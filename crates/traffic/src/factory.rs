//! The traffic-pattern registry: the open-ended catalogue of workloads.
//!
//! Mirrors the architecture registry of `pnoc-sim`: a traffic pattern
//! implements [`TrafficFactory`] — a name plus a `build(spec) → model`
//! constructor — and registers into the process-global [`TrafficRegistry`].
//! The benchmark harness resolves workloads by name, so adding a pattern
//! touches only this crate (or whatever crate defines the new pattern).
//!
//! The registry ships with every pattern of the paper's evaluation plus the
//! extended scenarios added by this reproduction:
//!
//! | name | generator |
//! |------|-----------|
//! | `uniform-random` | [`UniformRandomTraffic`] |
//! | `skewed-1` / `skewed-2` / `skewed-3` | [`SkewedTraffic`] |
//! | `hotspot-{10,20}pct-skewed-{2,3}` | [`HotspotSkewedTraffic`] |
//! | `real-application` | [`RealApplicationTraffic`] |
//! | `transpose`, `bit-reverse`, `tornado` | [`PermutationTraffic`] |
//! | `bursty-uniform` | [`BurstyUniformTraffic`] |

use crate::bursty::BurstyUniformTraffic;
use crate::gpu::RealApplicationTraffic;
use crate::hotspot::HotspotSkewedTraffic;
use crate::pattern::{PacketShape, SkewLevel};
use crate::permutation::{PermutationKind, PermutationTraffic};
use crate::skewed::SkewedTraffic;
use crate::uniform::UniformRandomTraffic;
use pnoc_noc::ids::CoreId;
use pnoc_noc::suggest::unknown_name_message;
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The failure of resolving a traffic pattern by name: carries the offending
/// name, the full sorted catalogue of registered patterns, and (when one is
/// within typo distance) the nearest registered name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPatternError {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name registered at the time of the lookup, sorted.
    pub registered: Vec<String>,
}

impl UnknownPatternError {
    /// The registered name closest to the unknown one, if any is plausibly a
    /// typo of it.
    #[must_use]
    pub fn suggestion(&self) -> Option<&str> {
        pnoc_noc::suggest::nearest_name(&self.name, self.registered.iter().map(String::as_str))
    }
}

impl std::fmt::Display for UnknownPatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&unknown_name_message(
            "traffic pattern",
            &self.name,
            &self.registered,
        ))
    }
}

impl std::error::Error for UnknownPatternError {}

/// Everything a factory needs to instantiate a traffic model for one run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Cluster topology of the simulated chip.
    pub topology: ClusterTopology,
    /// Packet geometry (from the bandwidth set under test).
    pub shape: PacketShape,
    /// Offered load of the run.
    pub load: OfferedLoad,
    /// RNG seed of the run (sweeps derive a fresh seed per point).
    pub seed: u64,
}

impl TrafficSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        Self {
            topology,
            shape,
            load,
            seed,
        }
    }
}

/// A factory for one traffic pattern.
///
/// Like `ArchitectureBuilder` in `pnoc-sim`, implementations are shared
/// across sweep worker threads; every call to [`TrafficFactory::build`]
/// must return a fresh, independent model.
pub trait TrafficFactory: Send + Sync {
    /// Stable registry key; by convention equal to the
    /// [`TrafficModel::name`] of the models it builds.
    fn name(&self) -> &str;

    /// Builds a fresh traffic model for one run.
    fn build(&self, spec: &TrafficSpec) -> Box<dyn TrafficModel + Send>;
}

/// A [`TrafficFactory`] from a name and a plain constructor function.
struct FnFactory {
    name: &'static str,
    construct: fn(&TrafficSpec) -> Box<dyn TrafficModel + Send>,
}

impl TrafficFactory for FnFactory {
    fn name(&self) -> &str {
        self.name
    }

    fn build(&self, spec: &TrafficSpec) -> Box<dyn TrafficModel + Send> {
        (self.construct)(spec)
    }
}

fn skewed(spec: &TrafficSpec, level: SkewLevel) -> Box<dyn TrafficModel + Send> {
    Box::new(SkewedTraffic::new(
        spec.topology,
        spec.shape,
        level,
        spec.load,
        spec.seed,
    ))
}

fn hotspot(spec: &TrafficSpec, fraction: f64, level: SkewLevel) -> Box<dyn TrafficModel + Send> {
    Box::new(HotspotSkewedTraffic::new(
        spec.topology,
        spec.shape,
        level,
        CoreId(0),
        fraction,
        spec.load,
        spec.seed,
    ))
}

fn permutation(spec: &TrafficSpec, kind: PermutationKind) -> Box<dyn TrafficModel + Send> {
    Box::new(PermutationTraffic::new(
        spec.topology,
        spec.shape,
        kind,
        spec.load,
        spec.seed,
    ))
}

/// The built-in factories (see the module docs).
fn builtin_factories() -> Vec<Arc<dyn TrafficFactory>> {
    let f = |name: &'static str,
             construct: fn(&TrafficSpec) -> Box<dyn TrafficModel + Send>|
     -> Arc<dyn TrafficFactory> { Arc::new(FnFactory { name, construct }) };
    vec![
        f("uniform-random", |s| {
            Box::new(UniformRandomTraffic::new(
                s.topology, s.shape, s.load, s.seed,
            ))
        }),
        f("skewed-1", |s| skewed(s, SkewLevel::Skewed1)),
        f("skewed-2", |s| skewed(s, SkewLevel::Skewed2)),
        f("skewed-3", |s| skewed(s, SkewLevel::Skewed3)),
        f("hotspot-10pct-skewed-2", |s| {
            hotspot(s, 0.10, SkewLevel::Skewed2)
        }),
        f("hotspot-10pct-skewed-3", |s| {
            hotspot(s, 0.10, SkewLevel::Skewed3)
        }),
        f("hotspot-20pct-skewed-2", |s| {
            hotspot(s, 0.20, SkewLevel::Skewed2)
        }),
        f("hotspot-20pct-skewed-3", |s| {
            hotspot(s, 0.20, SkewLevel::Skewed3)
        }),
        f("real-application", |s| {
            Box::new(RealApplicationTraffic::paper_mapping(
                s.topology, s.shape, s.load, s.seed,
            ))
        }),
        f("transpose", |s| permutation(s, PermutationKind::Transpose)),
        f("bit-reverse", |s| {
            permutation(s, PermutationKind::BitReverse)
        }),
        f("tornado", |s| permutation(s, PermutationKind::Tornado)),
        f("bursty-uniform", |s| {
            Box::new(BurstyUniformTraffic::new(
                s.topology, s.shape, s.load, s.seed,
            ))
        }),
    ]
}

/// A name-keyed collection of traffic factories.
#[derive(Default, Clone)]
pub struct TrafficRegistry {
    factories: BTreeMap<String, Arc<dyn TrafficFactory>>,
}

impl std::fmt::Debug for TrafficRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl TrafficRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with every built-in pattern.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut registry = Self::new();
        for factory in builtin_factories() {
            registry.register(factory);
        }
        registry
    }

    /// Registers a factory under its own name, replacing (and returning) any
    /// previous factory of the same name.
    pub fn register(
        &mut self,
        factory: Arc<dyn TrafficFactory>,
    ) -> Option<Arc<dyn TrafficFactory>> {
        self.factories.insert(factory.name().to_string(), factory)
    }

    /// Looks up a factory by name. Exact registered names always win; when
    /// nothing is registered under `name`, well-known shorthands fall back
    /// to their canonical pattern (see [`canonical_pattern_name`]), so a
    /// factory explicitly registered as `"uniform"` is never shadowed by
    /// the `uniform → uniform-random` convenience.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn TrafficFactory>> {
        self.factories
            .get(name)
            .or_else(|| self.factories.get(canonical_pattern_name(name)))
            .cloned()
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Number of registered patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

/// Shorthand pattern names accepted by lookups, mapped to their canonical
/// registry keys. Only the canonical names appear in
/// [`TrafficRegistry::names`]; shorthands are a lookup convenience (e.g. the
/// `repro --scenario firefly:uniform` CLI spelling).
pub const PATTERN_ALIASES: [(&str, &str); 2] =
    [("uniform", "uniform-random"), ("bursty", "bursty-uniform")];

/// Resolves a pattern shorthand to its canonical registry name (identity for
/// names that are not shorthands).
#[must_use]
pub fn canonical_pattern_name(name: &str) -> &str {
    PATTERN_ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map_or(name, |(_, canonical)| canonical)
}

fn global() -> &'static Mutex<TrafficRegistry> {
    static GLOBAL: OnceLock<Mutex<TrafficRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(TrafficRegistry::with_builtins()))
}

/// Registers a factory into the process-global registry, replacing (and
/// returning) any previous factory of the same name.
pub fn register_traffic_factory(
    factory: Arc<dyn TrafficFactory>,
) -> Option<Arc<dyn TrafficFactory>> {
    global()
        .lock()
        .expect("traffic registry poisoned")
        .register(factory)
}

/// Looks up a factory in the process-global registry.
///
/// # Errors
///
/// Returns [`UnknownPatternError`] — which lists every registered name and
/// suggests the nearest match — when no factory of that name is registered.
pub fn lookup_traffic_factory(name: &str) -> Result<Arc<dyn TrafficFactory>, UnknownPatternError> {
    let registry = global().lock().expect("traffic registry poisoned");
    registry.get(name).ok_or_else(|| UnknownPatternError {
        name: name.to_string(),
        registered: registry.names(),
    })
}

/// Names registered in the process-global registry, sorted.
#[must_use]
pub fn registered_traffic_patterns() -> Vec<String> {
    global().lock().expect("traffic registry poisoned").names()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrafficSpec {
        TrafficSpec::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(0.01),
            42,
        )
    }

    #[test]
    fn registry_covers_the_paper_and_extended_scenarios() {
        let registry = TrafficRegistry::with_builtins();
        assert!(
            registry.len() >= 7,
            "expected at least 7 built-in patterns, found {}",
            registry.len()
        );
        for name in [
            "uniform-random",
            "skewed-1",
            "skewed-2",
            "skewed-3",
            "hotspot-10pct-skewed-2",
            "hotspot-20pct-skewed-3",
            "real-application",
            "transpose",
            "bit-reverse",
            "tornado",
            "bursty-uniform",
        ] {
            assert!(registry.get(name).is_some(), "pattern '{name}' missing");
        }
    }

    #[test]
    fn factory_names_match_model_names() {
        let registry = TrafficRegistry::with_builtins();
        for name in registry.names() {
            let factory = registry.get(&name).expect("just listed");
            let model = factory.build(&spec());
            assert_eq!(
                model.name(),
                name,
                "factory '{name}' builds a model reporting a different name"
            );
        }
    }

    #[test]
    fn built_models_honour_the_spec() {
        let registry = TrafficRegistry::with_builtins();
        for name in registry.names() {
            let model = registry.get(&name).expect("listed").build(&spec());
            assert!(
                (model.offered_load().value() - 0.01).abs() < 1e-12,
                "pattern '{name}' ignored the spec load"
            );
        }
    }

    #[test]
    fn builds_are_reproducible_per_seed() {
        let registry = TrafficRegistry::with_builtins();
        for name in registry.names() {
            let factory = registry.get(&name).expect("listed");
            let mut a = factory.build(&spec());
            let mut b = factory.build(&spec());
            for cycle in 0..2_000 {
                let src = pnoc_noc::ids::CoreId(cycle as usize % 64);
                assert_eq!(
                    a.next_packet(cycle, src),
                    b.next_packet(cycle, src),
                    "pattern '{name}' is not reproducible for a fixed seed"
                );
            }
        }
    }

    #[test]
    fn unknown_pattern_error_lists_names_and_suggests_the_nearest() {
        let Err(error) = lookup_traffic_factory("tornadoo") else {
            panic!("'tornadoo' must not resolve");
        };
        assert_eq!(error.name, "tornadoo");
        assert!(error.registered.contains(&"tornado".to_string()));
        assert_eq!(error.suggestion(), Some("tornado"));
        let message = error.to_string();
        assert!(message.contains("unknown traffic pattern 'tornadoo'"));
        assert!(message.contains("uniform-random"));
        assert!(message.contains("did you mean 'tornado'?"));
    }

    #[test]
    fn global_registry_serves_and_accepts_registrations() {
        assert!(lookup_traffic_factory("uniform-random").is_ok());
        assert!(registered_traffic_patterns().len() >= 7);

        struct Custom;

        impl TrafficFactory for Custom {
            fn name(&self) -> &str {
                "custom-test-pattern"
            }

            fn build(&self, spec: &TrafficSpec) -> Box<dyn TrafficModel + Send> {
                Box::new(UniformRandomTraffic::new(
                    spec.topology,
                    spec.shape,
                    spec.load,
                    spec.seed,
                ))
            }
        }

        register_traffic_factory(Arc::new(Custom));
        assert!(lookup_traffic_factory("custom-test-pattern").is_ok());
    }

    #[test]
    fn shorthand_aliases_resolve_to_their_canonical_pattern() {
        assert_eq!(canonical_pattern_name("uniform"), "uniform-random");
        assert_eq!(canonical_pattern_name("bursty"), "bursty-uniform");
        assert_eq!(canonical_pattern_name("tornado"), "tornado");
        let via_alias = lookup_traffic_factory("uniform").expect("alias resolves");
        assert_eq!(via_alias.name(), "uniform-random");
        // Aliases are a lookup convenience only: the catalogue stays
        // canonical, so every listed factory still matches its model name.
        assert!(!registered_traffic_patterns().contains(&"uniform".to_string()));
    }

    #[test]
    fn exact_registrations_are_never_shadowed_by_aliases() {
        struct Exact;

        impl TrafficFactory for Exact {
            fn name(&self) -> &str {
                "uniform"
            }

            fn build(&self, spec: &TrafficSpec) -> Box<dyn TrafficModel + Send> {
                Box::new(UniformRandomTraffic::new(
                    spec.topology,
                    spec.shape,
                    spec.load,
                    spec.seed,
                ))
            }
        }

        let mut registry = TrafficRegistry::with_builtins();
        registry.register(Arc::new(Exact));
        let resolved = registry.get("uniform").expect("registered");
        assert_eq!(
            resolved.name(),
            "uniform",
            "an exact registration must win over the shorthand fallback"
        );
    }
}
