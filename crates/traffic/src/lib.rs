//! # pnoc-traffic — traffic generation for photonic NoC evaluation
//!
//! The thesis evaluates the NoC architectures with four families of traffic
//! (Sections 3.4.1 and 3.4.2):
//!
//! * **uniform-random** — every core communicates with every other core with
//!   the same data rate and the same bandwidth requirement ([`uniform`]),
//! * **skewed** — applications of four bandwidth classes share the chip and
//!   the frequency of communication is skewed toward the high-bandwidth
//!   applications (Table 3-1 / Table 3-2, [`skewed`]),
//! * **hotspot-coupled-skewed** — a fraction of all traffic additionally
//!   targets a single hotspot core (Section 3.4.2, [`hotspot`]),
//! * **real-application** — parallel GPU applications (MUM, BFS, CP, RAY,
//!   LPS) are mapped onto 12 clusters interacting with 4 memory clusters,
//!   with bandwidth demands derived from a synthetic GPU-memory interaction
//!   model ([`gpu`]). The same module contains the flit-size speedup model
//!   behind Figure 1-1.
//!
//! Two extended scenario families grow the evaluation beyond the paper:
//!
//! * **permutation** — transpose, bit-reverse and tornado, the classic
//!   adversarial fixed-destination patterns ([`permutation`]),
//! * **bursty** — Markov-modulated on-off uniform traffic ([`bursty`]).
//!
//! All generators implement [`pnoc_noc::traffic_model::TrafficModel`], carry
//! their own seeded RNG (runs are reproducible), and expose the per-cluster
//! pair bandwidth classes and volume shares that d-HetPNoC's demand tables
//! are built from. The [`factory`] module registers every pattern into a
//! process-global [`factory::TrafficRegistry`] so that downstream harnesses
//! resolve workloads by name instead of hard-coding a closed set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bursty;
pub mod demand;
pub mod factory;
pub mod gpu;
pub mod hotspot;
pub mod pattern;
pub mod permutation;
pub mod skewed;
pub mod uniform;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bursty::BurstyUniformTraffic;
    pub use crate::demand::DemandMatrix;
    pub use crate::factory::{
        lookup_traffic_factory, register_traffic_factory, registered_traffic_patterns,
        TrafficFactory, TrafficRegistry, TrafficSpec, UnknownPatternError,
    };
    pub use crate::gpu::{GpuBenchmark, GpuSpeedupModel, RealApplicationTraffic};
    pub use crate::hotspot::HotspotSkewedTraffic;
    pub use crate::pattern::{ClassMatrix, PacketShape, SkewLevel};
    pub use crate::permutation::{PermutationKind, PermutationTraffic};
    pub use crate::skewed::SkewedTraffic;
    pub use crate::uniform::UniformRandomTraffic;
}

pub use prelude::*;
