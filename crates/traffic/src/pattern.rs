//! Shared building blocks of the traffic generators: skew levels, bandwidth
//! class matrices and packet shapes.

use pnoc_noc::ids::ClusterId;
use pnoc_noc::packet::BandwidthClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three skewed traffic scenarios of Table 3-1 / Table 3-2.
///
/// Each level gives the fraction of communication that happens at each of the
/// four application bandwidths (from highest to lowest):
///
/// | scenario | 100 Gbps | 50 Gbps | 25 Gbps | 12.5 Gbps |
/// |----------|----------|---------|---------|-----------|
/// | Skewed1  | 50 %     | 25 %    | 12.5 %  | 12.5 %    |
/// | Skewed2  | 75 %     | 12.5 %  | 6.25 %  | 6.25 %    |
/// | Skewed3  | 90 %     | 5 %     | 2.5 %   | 2.5 %     |
///
/// (the absolute bandwidths scale with the bandwidth set; the class structure
/// is identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkewLevel {
    /// 50 / 25 / 12.5 / 12.5 % of traffic on the High / MediumHigh /
    /// MediumLow / Low classes.
    Skewed1,
    /// 75 / 12.5 / 6.25 / 6.25 %.
    Skewed2,
    /// 90 / 5 / 2.5 / 2.5 %.
    Skewed3,
}

impl SkewLevel {
    /// All levels in increasing skew order.
    pub const ALL: [SkewLevel; 3] = [SkewLevel::Skewed1, SkewLevel::Skewed2, SkewLevel::Skewed3];

    /// Fraction of communication for each bandwidth class, indexed by
    /// [`BandwidthClass::index`] (Low first). Sums to 1.
    #[must_use]
    pub fn class_frequencies(self) -> [f64; 4] {
        match self {
            SkewLevel::Skewed1 => [0.125, 0.125, 0.25, 0.50],
            SkewLevel::Skewed2 => [0.0625, 0.0625, 0.125, 0.75],
            SkewLevel::Skewed3 => [0.025, 0.025, 0.05, 0.90],
        }
    }

    /// Frequency of communication for one class.
    #[must_use]
    pub fn frequency(self, class: BandwidthClass) -> f64 {
        self.class_frequencies()[class.index()]
    }

    /// Name used in reports ("skewed-1", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SkewLevel::Skewed1 => "skewed-1",
            SkewLevel::Skewed2 => "skewed-2",
            SkewLevel::Skewed3 => "skewed-3",
        }
    }
}

/// The geometry of generated packets (how many flits, how wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketShape {
    /// Flits per packet.
    pub num_flits: u32,
    /// Bits per flit.
    pub flit_bits: u32,
}

impl PacketShape {
    /// Creates a packet shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(num_flits: u32, flit_bits: u32) -> Self {
        assert!(num_flits > 0 && flit_bits > 0);
        Self {
            num_flits,
            flit_bits,
        }
    }

    /// Total packet size in bits.
    #[must_use]
    pub fn total_bits(self) -> u64 {
        u64::from(self.num_flits) * u64::from(self.flit_bits)
    }
}

/// A per-cluster-pair assignment of application bandwidth classes.
///
/// In the skewed scenarios each (source cluster, destination cluster) pair is
/// served by one application whose bandwidth class is fixed for the duration
/// of a run (the class changes only when the task mapping changes, which is
/// exactly when d-HetPNoC re-runs its bandwidth allocation). Classes are
/// assigned pseudo-randomly with equal probability; the *skew* of the traffic
/// comes from how often each class is used, not from how many pairs belong to
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMatrix {
    num_clusters: usize,
    classes: Vec<BandwidthClass>,
}

impl ClassMatrix {
    /// Builds a matrix where every pair has the same class (uniform traffic).
    #[must_use]
    pub fn homogeneous(num_clusters: usize, class: BandwidthClass) -> Self {
        Self {
            num_clusters,
            classes: vec![class; num_clusters * num_clusters],
        }
    }

    /// Builds a matrix with classes drawn uniformly at random per pair, using
    /// `seed` for reproducibility.
    #[must_use]
    pub fn random(num_clusters: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = (0..num_clusters * num_clusters)
            .map(|_| BandwidthClass::ALL[rng.gen_range(0..BandwidthClass::ALL.len())])
            .collect();
        Self {
            num_clusters,
            classes,
        }
    }

    /// Builds a matrix from an explicit assignment function.
    pub fn from_fn(
        num_clusters: usize,
        mut f: impl FnMut(ClusterId, ClusterId) -> BandwidthClass,
    ) -> Self {
        let classes = (0..num_clusters * num_clusters)
            .map(|i| f(ClusterId(i / num_clusters), ClusterId(i % num_clusters)))
            .collect();
        Self {
            num_clusters,
            classes,
        }
    }

    /// Number of clusters the matrix covers.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Class of the application serving the `src → dst` pair.
    #[must_use]
    pub fn class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.classes[src.0 * self.num_clusters + dst.0]
    }

    /// Fraction of `src`'s traffic volume that goes to `dst`, when the volume
    /// of a pair is weighted by `skew.frequency(class)` and normalised over
    /// all destinations other than `src`.
    #[must_use]
    pub fn volume_share(&self, src: ClusterId, dst: ClusterId, skew: SkewLevel) -> f64 {
        if src == dst {
            return 0.0;
        }
        let total: f64 = (0..self.num_clusters)
            .filter(|&d| d != src.0)
            .map(|d| skew.frequency(self.class(src, ClusterId(d))))
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        skew.frequency(self.class(src, dst)) / total
    }

    /// Draws a destination cluster for a packet leaving `src`, following the
    /// volume shares of the skew level.
    pub fn sample_destination(
        &self,
        src: ClusterId,
        skew: SkewLevel,
        rng: &mut impl Rng,
    ) -> ClusterId {
        let weights: Vec<f64> = (0..self.num_clusters)
            .map(|d| {
                if d == src.0 {
                    0.0
                } else {
                    skew.frequency(self.class(src, ClusterId(d)))
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Degenerate case: fall back to the next cluster.
            return ClusterId((src.0 + 1) % self.num_clusters);
        }
        let mut draw = rng.gen_range(0.0..total);
        for (d, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if draw < *w {
                return ClusterId(d);
            }
            draw -= *w;
        }
        ClusterId((src.0 + 1) % self.num_clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_frequencies_sum_to_one_and_match_table_3_2() {
        for level in SkewLevel::ALL {
            let f = level.class_frequencies();
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{level:?} sums to {sum}");
        }
        assert!((SkewLevel::Skewed1.frequency(BandwidthClass::High) - 0.5).abs() < 1e-12);
        assert!((SkewLevel::Skewed2.frequency(BandwidthClass::High) - 0.75).abs() < 1e-12);
        assert!((SkewLevel::Skewed3.frequency(BandwidthClass::High) - 0.9).abs() < 1e-12);
        assert!((SkewLevel::Skewed3.frequency(BandwidthClass::Low) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn skew_increases_monotonically() {
        let h1 = SkewLevel::Skewed1.frequency(BandwidthClass::High);
        let h2 = SkewLevel::Skewed2.frequency(BandwidthClass::High);
        let h3 = SkewLevel::Skewed3.frequency(BandwidthClass::High);
        assert!(h1 < h2 && h2 < h3);
    }

    #[test]
    fn packet_shape_total_bits() {
        assert_eq!(PacketShape::new(64, 32).total_bits(), 2048);
        assert_eq!(PacketShape::new(8, 256).total_bits(), 2048);
    }

    #[test]
    fn class_matrix_is_deterministic_per_seed() {
        let a = ClassMatrix::random(16, 42);
        let b = ClassMatrix::random(16, 42);
        let c = ClassMatrix::random(16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different matrices");
    }

    #[test]
    fn class_matrix_covers_all_classes() {
        let m = ClassMatrix::random(16, 7);
        let mut seen = [false; 4];
        for s in 0..16 {
            for d in 0..16 {
                seen[m.class(ClusterId(s), ClusterId(d)).index()] = true;
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "256 random pairs must hit all 4 classes"
        );
    }

    #[test]
    fn volume_shares_normalise_per_source() {
        let m = ClassMatrix::random(16, 3);
        for s in 0..16 {
            let total: f64 = (0..16)
                .map(|d| m.volume_share(ClusterId(s), ClusterId(d), SkewLevel::Skewed3))
                .sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "source {s} shares sum to {total}"
            );
            assert_eq!(
                m.volume_share(ClusterId(s), ClusterId(s), SkewLevel::Skewed3),
                0.0
            );
        }
    }

    #[test]
    fn destination_sampling_follows_shares() {
        let m = ClassMatrix::random(16, 11);
        let mut rng = StdRng::seed_from_u64(5);
        let src = ClusterId(2);
        let samples = 40_000;
        let mut counts = [0usize; 16];
        for _ in 0..samples {
            counts[m.sample_destination(src, SkewLevel::Skewed3, &mut rng).0] += 1;
        }
        assert_eq!(counts[src.0], 0, "never send to self");
        for (d, &count) in counts.iter().enumerate() {
            if d == src.0 {
                continue;
            }
            let expected = m.volume_share(src, ClusterId(d), SkewLevel::Skewed3);
            let measured = count as f64 / samples as f64;
            assert!(
                (measured - expected).abs() < 0.02,
                "destination {d}: expected {expected:.3}, measured {measured:.3}"
            );
        }
    }

    #[test]
    fn homogeneous_matrix_gives_equal_shares() {
        let m = ClassMatrix::homogeneous(16, BandwidthClass::MediumHigh);
        let share = m.volume_share(ClusterId(0), ClusterId(5), SkewLevel::Skewed1);
        assert!((share - 1.0 / 15.0).abs() < 1e-12);
    }
}
