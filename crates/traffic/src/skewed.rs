//! Skewed traffic (Table 3-1 / Table 3-2).
//!
//! Applications of four different bandwidth requirements share the chip. Each
//! (source cluster, destination cluster) pair is served by one application of
//! a fixed class; the *skew level* controls how much of the traffic volume is
//! carried by the high-bandwidth applications (50 % → 75 % → 90 % for
//! Skewed1 → Skewed2 → Skewed3). With increasing skew the uniformly
//! provisioned Firefly channels become insufficient for the flows that carry
//! most of the traffic, which is the effect the d-HetPNoC bandwidth
//! allocation exploits.

use crate::pattern::{ClassMatrix, PacketShape, SkewLevel};
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Skewed inter-cluster traffic.
#[derive(Debug, Clone)]
pub struct SkewedTraffic {
    topology: ClusterTopology,
    shape: PacketShape,
    skew: SkewLevel,
    classes: ClassMatrix,
    load: OfferedLoad,
    /// Relative injection intensity per source cluster (mean 1.0): clusters
    /// whose application mix is dominated by high-bandwidth, frequently
    /// communicating applications inject proportionally more traffic.
    intensity: Vec<f64>,
    rng: StdRng,
}

/// Computes per-cluster relative injection intensities from a class matrix
/// and a skew level: each cluster's weight is the sum of the communication
/// frequencies of its outgoing application flows, normalised to mean 1.
fn cluster_intensities(classes: &ClassMatrix, skew: SkewLevel) -> Vec<f64> {
    let n = classes.num_clusters();
    let mut weights: Vec<f64> = (0..n)
        .map(|s| {
            (0..n)
                .filter(|&d| d != s)
                .map(|d| skew.frequency(classes.class(ClusterId(s), ClusterId(d))))
                .sum()
        })
        .collect();
    let mean: f64 = weights.iter().sum::<f64>() / n as f64;
    if mean > 0.0 {
        for w in &mut weights {
            *w /= mean;
        }
    } else {
        weights.iter_mut().for_each(|w| *w = 1.0);
    }
    weights
}

impl SkewedTraffic {
    /// Creates a skewed traffic generator with a pseudo-random class
    /// assignment derived from `seed`.
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        skew: SkewLevel,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        let classes = ClassMatrix::random(topology.num_clusters(), seed);
        Self::with_classes(topology, shape, skew, classes, load, seed)
    }

    /// Creates a generator with an explicit class matrix (used by the
    /// hotspot and real-application generators and by tests).
    #[must_use]
    pub fn with_classes(
        topology: ClusterTopology,
        shape: PacketShape,
        skew: SkewLevel,
        classes: ClassMatrix,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        let intensity = cluster_intensities(&classes, skew);
        Self {
            topology,
            shape,
            skew,
            classes,
            load,
            intensity,
            rng: StdRng::seed_from_u64(seed ^ 0x534b_4557),
        }
    }

    /// The skew level of this generator.
    #[must_use]
    pub fn skew(&self) -> SkewLevel {
        self.skew
    }

    /// The per-pair class assignment.
    #[must_use]
    pub fn classes(&self) -> &ClassMatrix {
        &self.classes
    }

    /// Draws one destination core in cluster `dst_cluster` (uniformly over
    /// its cores).
    fn pick_core_in(&mut self, dst_cluster: ClusterId) -> CoreId {
        let local = self.rng.gen_range(0..self.topology.cores_per_cluster());
        dst_cluster.core(local, self.topology.cores_per_cluster())
    }
}

impl TrafficModel for SkewedTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let src_cluster = self.topology.cluster_of(src);
        let probability = (self.load.value() * self.intensity[src_cluster.0]).clamp(0.0, 1.0);
        if !self.rng.gen_bool(probability) {
            return None;
        }
        let dst_cluster = self
            .classes
            .sample_destination(src_cluster, self.skew, &mut self.rng);
        let dst = self.pick_core_in(dst_cluster);
        Some(PacketDescriptor {
            src,
            dst,
            num_flits: self.shape.num_flits,
            flit_bits: self.shape.flit_bits,
            class: self.classes.class(src_cluster, dst_cluster),
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.classes.class(src, dst)
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        self.classes.volume_share(src, dst, self.skew)
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        self.intensity[src.0]
    }

    fn name(&self) -> String {
        self.skew.label().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(skew: SkewLevel) -> SkewedTraffic {
        SkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            skew,
            OfferedLoad::new(1.0),
            99,
        )
    }

    #[test]
    fn generated_class_mix_follows_the_skew_frequencies() {
        // The class mix of a single run depends on the random class-matrix
        // realization (how many high-bandwidth pairs each source happens to
        // own), so average over several matrices to measure the ensemble
        // frequency the skew level prescribes.
        for skew in SkewLevel::ALL {
            let mut by_class = [0usize; 4];
            let mut total = 0usize;
            for seed in [7, 21, 99, 1234] {
                let mut m = SkewedTraffic::new(
                    ClusterTopology::paper_default(),
                    PacketShape::new(64, 32),
                    skew,
                    OfferedLoad::new(1.0),
                    seed,
                );
                for cycle in 0..30_000 {
                    // Rotate over source cores so every cluster contributes.
                    let src = CoreId((cycle as usize * 7) % 64);
                    if let Some(p) = m.next_packet(cycle, src) {
                        by_class[p.class.index()] += 1;
                        total += 1;
                    }
                }
            }
            assert!(total > 40_000, "too few packets generated");
            let high_fraction = by_class[3] as f64 / total as f64;
            let expected = skew.frequency(BandwidthClass::High);
            assert!(
                (high_fraction - expected).abs() < 0.07,
                "{skew:?}: high fraction {high_fraction}, expected {expected}"
            );
        }
    }

    #[test]
    fn packets_never_target_the_source_cluster() {
        let mut m = model(SkewLevel::Skewed2);
        for cycle in 0..5_000 {
            let src = CoreId(9);
            if let Some(p) = m.next_packet(cycle, src) {
                assert_ne!(
                    ClusterTopology::paper_default().cluster_of(p.dst),
                    ClusterTopology::paper_default().cluster_of(src)
                );
            }
        }
    }

    #[test]
    fn packet_class_matches_the_pair_class() {
        let mut m = model(SkewLevel::Skewed1);
        let topo = ClusterTopology::paper_default();
        for cycle in 0..2_000 {
            let src = CoreId(30);
            if let Some(p) = m.next_packet(cycle, src) {
                let expected = m.demand_class(topo.cluster_of(src), topo.cluster_of(p.dst));
                assert_eq!(p.class, expected);
            }
        }
    }

    #[test]
    fn source_intensities_average_to_one() {
        for skew in SkewLevel::ALL {
            let m = model(skew);
            let mean: f64 = (0..16)
                .map(|c| m.source_intensity(ClusterId(c)))
                .sum::<f64>()
                / 16.0;
            assert!((mean - 1.0).abs() < 1e-9, "{skew:?} mean intensity {mean}");
            assert!((0..16).all(|c| m.source_intensity(ClusterId(c)) > 0.0));
        }
    }

    #[test]
    fn higher_skew_spreads_source_intensities_wider() {
        let spread = |skew: SkewLevel| {
            let m = model(skew);
            let values: Vec<f64> = (0..16).map(|c| m.source_intensity(ClusterId(c))).collect();
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            let min = values.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread(SkewLevel::Skewed3) > spread(SkewLevel::Skewed1),
            "skewed-3 must have a wider intensity spread than skewed-1"
        );
    }

    #[test]
    fn volume_shares_are_consistent_with_demand_classes() {
        let m = model(SkewLevel::Skewed3);
        // High-class destinations receive strictly more volume than low-class
        // ones for the same source.
        let src = ClusterId(0);
        let mut high_share = None;
        let mut low_share = None;
        for d in 1..16 {
            let dst = ClusterId(d);
            match m.demand_class(src, dst) {
                BandwidthClass::High => high_share = Some(m.volume_share(src, dst)),
                BandwidthClass::Low => low_share = Some(m.volume_share(src, dst)),
                _ => {}
            }
        }
        if let (Some(h), Some(l)) = (high_share, low_share) {
            assert!(
                h > l,
                "high-class share {h} must exceed low-class share {l}"
            );
        }
    }

    #[test]
    fn name_reflects_skew_level() {
        assert_eq!(model(SkewLevel::Skewed1).name(), "skewed-1");
        assert_eq!(model(SkewLevel::Skewed3).name(), "skewed-3");
    }
}
