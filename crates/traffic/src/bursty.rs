//! Bursty (Markov-modulated on-off) uniform traffic.
//!
//! Real workloads do not inject Bernoulli-smooth traffic: communication
//! phases alternate with compute phases. This generator gives every core an
//! independent two-state Markov chain (ON / OFF). While ON the core injects
//! uniform-random traffic at an elevated rate `load / duty`; while OFF it is
//! silent. The transition probabilities are chosen so that the stationary ON
//! probability equals `duty` and the mean burst length equals `burst_len`
//! cycles — so the *long-run* offered load matches the configured load while
//! the short-run load alternates between `0` and `load / duty`.
//!
//! With the defaults (`duty = 0.25`, `burst_len = 64`) the instantaneous
//! load during a burst is 4× the mean, which drives queueing far harder than
//! smooth injection at the same mean — precisely the transient regime the
//! reservation-assisted photonic transfers have to absorb.

use crate::pattern::PacketShape;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default fraction of time each core spends in the ON state.
pub const DEFAULT_DUTY: f64 = 0.25;

/// Default mean burst (ON-phase) length in cycles.
pub const DEFAULT_BURST_LEN: f64 = 64.0;

/// Markov-modulated on-off uniform traffic (see the module docs).
#[derive(Debug, Clone)]
pub struct BurstyUniformTraffic {
    topology: ClusterTopology,
    shape: PacketShape,
    load: OfferedLoad,
    duty: f64,
    burst_len: f64,
    /// Per-core ON/OFF state.
    on: Vec<bool>,
    rng: StdRng,
}

impl BurstyUniformTraffic {
    /// Creates a bursty generator with explicit burst parameters.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `(0, 1]` or `burst_len < 1`.
    #[must_use]
    pub fn with_burstiness(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        duty: f64,
        burst_len: f64,
        seed: u64,
    ) -> Self {
        assert!(duty > 0.0 && duty <= 1.0, "duty {duty} outside (0, 1]");
        assert!(burst_len >= 1.0, "mean burst length {burst_len} below 1");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4255_5253);
        // Start each core in its stationary distribution so the measured
        // window needs no extra burn-in beyond the engine's warm-up.
        let on = (0..topology.num_cores())
            .map(|_| rng.gen_bool(duty))
            .collect();
        Self {
            topology,
            shape,
            load,
            duty,
            burst_len,
            on,
            rng,
        }
    }

    /// Creates a bursty generator with the default burstiness
    /// ([`DEFAULT_DUTY`], [`DEFAULT_BURST_LEN`]).
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        Self::with_burstiness(topology, shape, load, DEFAULT_DUTY, DEFAULT_BURST_LEN, seed)
    }

    /// Fraction of time a core spends ON.
    #[must_use]
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Injection probability while a core is ON (the mean load amplified by
    /// `1 / duty`, clamped to 1).
    #[must_use]
    pub fn on_load(&self) -> f64 {
        (self.load.value() / self.duty).min(1.0)
    }

    /// Advances the Markov chain of one core by one step and returns whether
    /// the core is ON afterwards.
    fn advance_state(&mut self, core: usize) -> bool {
        let p_off = 1.0 / self.burst_len;
        // Stationary ON probability = duty ⇒ p_on = p_off · duty / (1 − duty)
        // (clamped for duty = 1).
        let p_on = if self.duty >= 1.0 {
            1.0
        } else {
            (p_off * self.duty / (1.0 - self.duty)).min(1.0)
        };
        let state = self.on[core];
        let next = if state {
            !self.rng.gen_bool(p_off)
        } else {
            self.rng.gen_bool(p_on)
        };
        self.on[core] = next;
        next
    }
}

impl TrafficModel for BurstyUniformTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        // The engine queries each core exactly once per cycle, so one chain
        // step per query keeps the per-core processes independent and
        // correctly timed.
        if !self.advance_state(src.0) {
            return None;
        }
        if !self.rng.gen_bool(self.on_load()) {
            return None;
        }
        let num_cores = self.topology.num_cores();
        let mut dst = CoreId(self.rng.gen_range(0..num_cores));
        while dst == src {
            dst = CoreId(self.rng.gen_range(0..num_cores));
        }
        Some(PacketDescriptor {
            src,
            dst,
            num_flits: self.shape.num_flits,
            flit_bits: self.shape.flit_bits,
            class: BandwidthClass::MediumHigh,
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
        BandwidthClass::MediumHigh
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        if src == dst {
            0.0
        } else {
            1.0 / (self.topology.num_clusters() - 1) as f64
        }
    }

    fn name(&self) -> String {
        "bursty-uniform".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(load: f64) -> BurstyUniformTraffic {
        BurstyUniformTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(load),
            13,
        )
    }

    #[test]
    fn long_run_rate_matches_the_offered_load() {
        let mut m = model(0.05);
        let cycles = 200_000;
        let generated = (0..cycles)
            .filter(|&c| m.next_packet(c, CoreId(7)).is_some())
            .count();
        let rate = generated as f64 / cycles as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}, expected ≈0.05");
    }

    #[test]
    fn duty_cycle_matches_the_stationary_distribution() {
        let mut m = model(0.01);
        let steps = 200_000;
        let on = (0..steps).filter(|_| m.advance_state(3)).count();
        let duty = on as f64 / steps as f64;
        assert!(
            (duty - DEFAULT_DUTY).abs() < 0.03,
            "duty {duty}, expected ≈0.25"
        );
    }

    #[test]
    fn injection_is_burstier_than_bernoulli() {
        // Count ON→ON persistence: for a Markov chain with mean burst length
        // 64 the probability of staying ON is 1 − 1/64 ≈ 0.984, far above
        // the stationary ON probability (0.25) a memoryless process has.
        let mut m = model(0.01);
        let mut prev = m.advance_state(0);
        let (mut on_on, mut on_total) = (0usize, 0usize);
        for _ in 0..200_000 {
            let now = m.advance_state(0);
            if prev {
                on_total += 1;
                if now {
                    on_on += 1;
                }
            }
            prev = now;
        }
        let persistence = on_on as f64 / on_total.max(1) as f64;
        assert!(
            persistence > 0.95,
            "ON→ON persistence {persistence}, expected ≈0.984"
        );
    }

    #[test]
    fn destinations_are_uniform_and_never_self() {
        let mut m = model(1.0);
        let mut seen = vec![0usize; 64];
        let mut total = 0;
        for cycle in 0..50_000 {
            if let Some(p) = m.next_packet(cycle, CoreId(10)) {
                assert_ne!(p.dst, CoreId(10));
                seen[p.dst.0] += 1;
                total += 1;
            }
        }
        assert!(total > 5_000, "only {total} packets generated");
        let covered = seen.iter().filter(|&&c| c > 0).count();
        assert!(covered >= 60, "only {covered} destinations seen");
    }

    #[test]
    fn volume_shares_are_uniform() {
        let m = model(0.5);
        let share = m.volume_share(ClusterId(0), ClusterId(9));
        assert!((share - 1.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.volume_share(ClusterId(4), ClusterId(4)), 0.0);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn zero_duty_is_rejected() {
        let _ = BurstyUniformTraffic::with_burstiness(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(0.1),
            0.0,
            64.0,
            1,
        );
    }
}
