//! Hotspot-coupled skewed traffic (Section 3.4.2).
//!
//! "a core is determined to be the hotspot core and all cores send a certain
//! percentage of all traffic to the hotspot. The rest of the traffic is
//! distributed following the skewed traffic types". The paper's four case
//! studies are 10 % and 20 % hotspot fractions combined with the Skewed2 and
//! Skewed3 patterns; [`HotspotSkewedTraffic::paper_case_studies`] builds all
//! four.

use crate::pattern::{PacketShape, SkewLevel};
use crate::skewed::SkewedTraffic;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Skewed traffic with an additional hotspot destination.
#[derive(Debug, Clone)]
pub struct HotspotSkewedTraffic {
    topology: ClusterTopology,
    inner: SkewedTraffic,
    hotspot: CoreId,
    hotspot_fraction: f64,
    label: String,
    rng: StdRng,
}

impl HotspotSkewedTraffic {
    /// Creates a hotspot generator.
    ///
    /// # Panics
    ///
    /// Panics if `hotspot_fraction` is outside `[0, 1)`.
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        skew: SkewLevel,
        hotspot: CoreId,
        hotspot_fraction: f64,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&hotspot_fraction),
            "hotspot fraction must be in [0, 1)"
        );
        let inner = SkewedTraffic::new(topology, shape, skew, load, seed);
        let label = format!(
            "hotspot-{}pct-{}",
            (hotspot_fraction * 100.0).round() as u32,
            skew.label()
        );
        Self {
            topology,
            inner,
            hotspot,
            hotspot_fraction,
            label,
            rng: StdRng::seed_from_u64(seed ^ 0x4854_5350),
        }
    }

    /// The four synthetic case studies of Figure 3-5:
    /// skewed-hotspot1 (10 % + Skewed2), skewed-hotspot2 (10 % + Skewed3),
    /// skewed-hotspot3 (20 % + Skewed2), skewed-hotspot4 (20 % + Skewed3).
    #[must_use]
    pub fn paper_case_studies(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        seed: u64,
    ) -> Vec<HotspotSkewedTraffic> {
        let hotspot = CoreId(0);
        vec![
            Self::new(
                topology,
                shape,
                SkewLevel::Skewed2,
                hotspot,
                0.10,
                load,
                seed,
            ),
            Self::new(
                topology,
                shape,
                SkewLevel::Skewed3,
                hotspot,
                0.10,
                load,
                seed,
            ),
            Self::new(
                topology,
                shape,
                SkewLevel::Skewed2,
                hotspot,
                0.20,
                load,
                seed,
            ),
            Self::new(
                topology,
                shape,
                SkewLevel::Skewed3,
                hotspot,
                0.20,
                load,
                seed,
            ),
        ]
    }

    /// The hotspot core.
    #[must_use]
    pub fn hotspot(&self) -> CoreId {
        self.hotspot
    }

    /// Fraction of traffic sent to the hotspot.
    #[must_use]
    pub fn hotspot_fraction(&self) -> f64 {
        self.hotspot_fraction
    }
}

impl TrafficModel for HotspotSkewedTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let base = self.inner.next_packet(cycle, src)?;
        if src != self.hotspot && self.rng.gen_bool(self.hotspot_fraction) {
            // Redirect this packet to the hotspot core. The flow inherits the
            // class of the (src, hotspot-cluster) application.
            let hot_cluster = self.topology.cluster_of(self.hotspot);
            let src_cluster = self.topology.cluster_of(src);
            let class = if src_cluster == hot_cluster {
                base.class
            } else {
                self.inner.demand_class(src_cluster, hot_cluster)
            };
            return Some(PacketDescriptor {
                dst: self.hotspot,
                class,
                ..base
            });
        }
        Some(base)
    }

    fn offered_load(&self) -> OfferedLoad {
        self.inner.offered_load()
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.inner.set_offered_load(load);
    }

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.inner.demand_class(src, dst)
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        self.inner.source_intensity(src)
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        // Blend the skewed share with the hotspot redirection.
        let hot_cluster = self.topology.cluster_of(self.hotspot);
        if src == dst {
            return 0.0;
        }
        let base = self.inner.volume_share(src, dst) * (1.0 - self.hotspot_fraction);
        if dst == hot_cluster && src != hot_cluster {
            base + self.hotspot_fraction
        } else {
            base
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(fraction: f64) -> HotspotSkewedTraffic {
        HotspotSkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            SkewLevel::Skewed2,
            CoreId(0),
            fraction,
            OfferedLoad::new(1.0),
            21,
        )
    }

    #[test]
    fn hotspot_receives_the_configured_fraction() {
        let mut m = model(0.2);
        let mut total = 0usize;
        let mut to_hotspot = 0;
        for cycle in 0..30_000 {
            let src = CoreId(((cycle as usize) % 63) + 1); // never the hotspot itself
            if let Some(p) = m.next_packet(cycle, src) {
                total += 1;
                if p.dst == CoreId(0) {
                    to_hotspot += 1;
                }
            }
        }
        assert!(total > 10_000);
        let fraction = to_hotspot as f64 / total as f64;
        // The hotspot also receives a little skewed traffic naturally, so the
        // measured fraction is at least the configured redirection.
        assert!(
            fraction > 0.18 && fraction < 0.30,
            "hotspot fraction {fraction}"
        );
    }

    #[test]
    fn volume_shares_still_normalise() {
        let m = model(0.1);
        for s in 1..16 {
            let total: f64 = (0..16)
                .map(|d| m.volume_share(ClusterId(s), ClusterId(d)))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "source {s}: {total}");
        }
        // The hotspot cluster receives at least the redirected fraction on top
        // of its skewed share.
        let hot_share = m.volume_share(ClusterId(5), ClusterId(0));
        assert!(
            hot_share >= m.hotspot_fraction(),
            "hotspot share {hot_share} below redirected fraction"
        );
    }

    #[test]
    fn paper_case_studies_have_expected_parameters() {
        let studies = HotspotSkewedTraffic::paper_case_studies(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(0.01),
            3,
        );
        assert_eq!(studies.len(), 4);
        assert!((studies[0].hotspot_fraction() - 0.10).abs() < 1e-12);
        assert!((studies[3].hotspot_fraction() - 0.20).abs() < 1e-12);
        assert_eq!(studies[0].name(), "hotspot-10pct-skewed-2");
        assert_eq!(studies[3].name(), "hotspot-20pct-skewed-3");
    }

    #[test]
    #[should_panic(expected = "hotspot fraction")]
    fn fraction_of_one_is_rejected() {
        let _ = model(1.0);
    }
}
