//! Deterministic permutation traffic: transpose, bit-reverse and tornado.
//!
//! Permutation patterns are the classic adversarial workloads of the NoC
//! literature (Dally & Towles, ch. 3): every source core sends all of its
//! traffic to a single, fixed destination determined by a permutation of the
//! core index. They stress exactly the weakness the paper's dynamic
//! bandwidth allocation targets — a *non-uniform, persistent* communication
//! matrix — while being fully reproducible:
//!
//! * **transpose** — on the √n × √n core grid, core `(r, c)` sends to
//!   `(c, r)`; diagonal cores have no partner and stay silent,
//! * **bit-reverse** — core `b₅b₄…b₀` sends to core `b₀…b₄b₅`
//!   (palindromic indices map to themselves and stay silent),
//! * **tornado** — core `i` sends to core `(i + n/2 − 1) mod n`, the
//!   worst case for ring-like channel provisioning.
//!
//! Packet *timing* is still randomized (Bernoulli injection at the offered
//! load, from the generator's seeded RNG); only the destination mapping is
//! deterministic.

use crate::pattern::PacketShape;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The supported core-index permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PermutationKind {
    /// Matrix transpose on the √n × √n core grid.
    Transpose,
    /// Bit reversal of the core index.
    BitReverse,
    /// Half-ring offset: `i → (i + n/2 − 1) mod n`.
    Tornado,
}

impl PermutationKind {
    /// All supported permutations.
    pub const ALL: [PermutationKind; 3] = [
        PermutationKind::Transpose,
        PermutationKind::BitReverse,
        PermutationKind::Tornado,
    ];

    /// Registry / report name ("transpose", "bit-reverse", "tornado").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PermutationKind::Transpose => "transpose",
            PermutationKind::BitReverse => "bit-reverse",
            PermutationKind::Tornado => "tornado",
        }
    }

    /// Destination core for `src` under this permutation, or `None` when the
    /// permutation maps the core to itself (the core stays silent).
    ///
    /// # Panics
    ///
    /// Panics if the core count does not fit the permutation's structure
    /// (perfect square for transpose, power of two for bit-reverse).
    #[must_use]
    pub fn destination(self, src: usize, num_cores: usize) -> Option<usize> {
        let dst = match self {
            PermutationKind::Transpose => {
                let side = (num_cores as f64).sqrt().round() as usize;
                assert!(
                    side * side == num_cores,
                    "transpose needs a square core count, got {num_cores}"
                );
                let (r, c) = (src / side, src % side);
                c * side + r
            }
            PermutationKind::BitReverse => {
                assert!(
                    num_cores.is_power_of_two(),
                    "bit-reverse needs a power-of-two core count, got {num_cores}"
                );
                let bits = num_cores.trailing_zeros();
                (src as u64).reverse_bits() as usize >> (64 - bits)
            }
            PermutationKind::Tornado => (src + num_cores / 2 - 1) % num_cores,
        };
        (dst != src).then_some(dst)
    }
}

/// Permutation traffic over all cores (see the module docs).
#[derive(Debug, Clone)]
pub struct PermutationTraffic {
    topology: ClusterTopology,
    shape: PacketShape,
    kind: PermutationKind,
    load: OfferedLoad,
    /// `mapping[src] = Some(dst)`, or `None` for silent (self-mapped) cores.
    mapping: Vec<Option<CoreId>>,
    /// Cluster-level volume shares, row-major over (src, dst) cluster pairs.
    shares: Vec<f64>,
    /// Per-cluster injection intensity relative to the chip mean.
    intensity: Vec<f64>,
    rng: StdRng,
}

impl PermutationTraffic {
    /// Creates a permutation generator.
    ///
    /// # Panics
    ///
    /// Panics if the topology's core count does not fit the permutation (see
    /// [`PermutationKind::destination`]).
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        kind: PermutationKind,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        let n = topology.num_cores();
        let mapping: Vec<Option<CoreId>> = (0..n)
            .map(|src| kind.destination(src, n).map(CoreId))
            .collect();
        let clusters = topology.num_clusters();
        // Count inter-cluster flows per (src cluster, dst cluster) pair and
        // normalise each row over destinations ≠ source cluster.
        let mut counts = vec![0.0f64; clusters * clusters];
        for (src, dst) in mapping.iter().enumerate() {
            if let Some(dst) = dst {
                let sc = topology.cluster_of(CoreId(src)).0;
                let dc = topology.cluster_of(*dst).0;
                if sc != dc {
                    counts[sc * clusters + dc] += 1.0;
                }
            }
        }
        let shares: Vec<f64> = (0..clusters)
            .flat_map(|sc| {
                let total: f64 = counts[sc * clusters..(sc + 1) * clusters].iter().sum();
                (0..clusters)
                    .map(|dc| {
                        if total > 0.0 {
                            counts[sc * clusters + dc] / total
                        } else {
                            0.0
                        }
                    })
                    .collect::<Vec<f64>>()
            })
            .collect();
        // Injection intensity: clusters with silent cores inject less.
        let cpc = topology.cores_per_cluster();
        let mut intensity: Vec<f64> = (0..clusters)
            .map(|c| {
                (0..cpc)
                    .filter(|&l| mapping[ClusterId(c).core(l, cpc).0].is_some())
                    .count() as f64
                    / cpc as f64
            })
            .collect();
        let mean = intensity.iter().sum::<f64>() / clusters as f64;
        if mean > 0.0 {
            for w in &mut intensity {
                *w /= mean;
            }
        }
        Self {
            topology,
            shape,
            kind,
            load,
            mapping,
            shares,
            intensity,
            rng: StdRng::seed_from_u64(seed ^ 0x5045_524d),
        }
    }

    /// The permutation of this generator.
    #[must_use]
    pub fn kind(&self) -> PermutationKind {
        self.kind
    }

    /// The fixed destination of a source core (`None` for silent cores).
    #[must_use]
    pub fn destination_of(&self, src: CoreId) -> Option<CoreId> {
        self.mapping[src.0]
    }
}

impl TrafficModel for PermutationTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let dst = self.mapping[src.0]?;
        if !self.rng.gen_bool(self.load.value()) {
            return None;
        }
        Some(PacketDescriptor {
            src,
            dst,
            num_flits: self.shape.num_flits,
            flit_bits: self.shape.flit_bits,
            class: BandwidthClass::MediumHigh,
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
        BandwidthClass::MediumHigh
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        if src == dst {
            return 0.0;
        }
        self.shares[src.0 * self.topology.num_clusters() + dst.0]
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        self.intensity[src.0]
    }

    fn name(&self) -> String {
        self.kind.label().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(kind: PermutationKind, load: f64) -> PermutationTraffic {
        PermutationTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            kind,
            OfferedLoad::new(load),
            9,
        )
    }

    #[test]
    fn transpose_maps_the_8x8_grid() {
        let m = model(PermutationKind::Transpose, 1.0);
        // (r=1, c=2) = core 10 → (r=2, c=1) = core 17.
        assert_eq!(m.destination_of(CoreId(10)), Some(CoreId(17)));
        // Diagonal core (r=c=1) = core 9 is silent.
        assert_eq!(m.destination_of(CoreId(9)), None);
        // Transpose is an involution on the non-diagonal cores.
        for src in 0..64 {
            if let Some(dst) = m.destination_of(CoreId(src)) {
                assert_eq!(m.destination_of(dst), Some(CoreId(src)));
            }
        }
    }

    #[test]
    fn bit_reverse_maps_the_6_bit_indices() {
        let m = model(PermutationKind::BitReverse, 1.0);
        // 000001 → 100000.
        assert_eq!(m.destination_of(CoreId(1)), Some(CoreId(32)));
        // 000110 → 011000.
        assert_eq!(m.destination_of(CoreId(6)), Some(CoreId(24)));
        // Palindromic index 100001 → itself → silent.
        assert_eq!(m.destination_of(CoreId(33)), None);
    }

    #[test]
    fn tornado_offsets_by_half_the_ring_minus_one() {
        let m = model(PermutationKind::Tornado, 1.0);
        for src in 0..64usize {
            assert_eq!(
                m.destination_of(CoreId(src)),
                Some(CoreId((src + 31) % 64)),
                "tornado destination of core {src}"
            );
        }
    }

    #[test]
    fn all_packets_follow_the_fixed_mapping() {
        for kind in PermutationKind::ALL {
            let mut m = model(kind, 1.0);
            for cycle in 0..500 {
                let src = CoreId((cycle as usize * 7) % 64);
                let expected = m.destination_of(src);
                match (m.next_packet(cycle, src), expected) {
                    (Some(p), Some(dst)) => {
                        assert_eq!(p.dst, dst, "{kind:?}: wrong destination");
                        assert_ne!(p.dst, src);
                    }
                    (None, None) => {}
                    (got, want) => {
                        panic!("{kind:?}: core {src:?} produced {got:?}, mapping {want:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn injection_rate_tracks_offered_load() {
        let mut m = model(PermutationKind::Tornado, 0.2);
        let cycles = 20_000;
        let generated = (0..cycles)
            .filter(|&c| m.next_packet(c, CoreId(5)).is_some())
            .count();
        let rate = generated as f64 / cycles as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn volume_shares_normalise_for_active_sources() {
        for kind in PermutationKind::ALL {
            let m = model(kind, 0.5);
            for s in 0..16 {
                let total: f64 = (0..16)
                    .map(|d| m.volume_share(ClusterId(s), ClusterId(d)))
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-9 || total == 0.0,
                    "{kind:?}: source cluster {s} shares sum to {total}"
                );
                assert_eq!(m.volume_share(ClusterId(s), ClusterId(s)), 0.0);
            }
        }
    }

    #[test]
    fn tornado_shares_point_at_the_opposite_clusters() {
        let m = model(PermutationKind::Tornado, 0.5);
        // Cores 0..3 (cluster 0) → cores 31..34, i.e. clusters 7 and 8.
        let c7 = m.volume_share(ClusterId(0), ClusterId(7));
        let c8 = m.volume_share(ClusterId(0), ClusterId(8));
        assert!((c7 + c8 - 1.0).abs() < 1e-9, "c7 {c7} + c8 {c8}");
        assert!(c7 > 0.0 && c8 > 0.0);
    }

    #[test]
    fn intensity_reflects_silent_cores() {
        let m = model(PermutationKind::Transpose, 0.5);
        // Diagonal clusters (containing r==c cores) have silent cores, so
        // their intensity is below that of fully active clusters — but the
        // mean over all clusters stays 1.
        let mean: f64 = (0..16)
            .map(|c| m.source_intensity(ClusterId(c)))
            .sum::<f64>()
            / 16.0;
        assert!((mean - 1.0).abs() < 1e-9);
        let tornado = model(PermutationKind::Tornado, 0.5);
        for c in 0..16 {
            assert!((tornado.source_intensity(ClusterId(c)) - 1.0).abs() < 1e-12);
        }
    }
}
