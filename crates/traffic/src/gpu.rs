//! GPU-memory interaction models.
//!
//! Two parts of the thesis rely on GPU workload characteristics:
//!
//! 1. **Figure 1-1** motivates heterogeneous interconnects by showing the
//!    speedup of CUDA-SDK / Rodinia benchmarks when the GPU-memory flit size
//!    grows from 32 B to 1024 B at 700 MHz: most benchmarks gain less than
//!    1 %, a few gain up to 63 %.
//! 2. **Section 3.4.2** builds a real-application traffic scenario by mapping
//!    the GPGPU-Sim benchmarks MUM, BFS, CP, RAY and LPS onto 20, 4, 4, 4 and
//!    16 cores (12 clusters) with 4 memory clusters, using each benchmark's
//!    core↔memory bandwidth demand.
//!
//! The thesis obtained those demands by profiling the applications in
//! GPGPU-Sim. This reproduction substitutes a calibrated analytic model
//! ([`GpuBenchmark`]): each benchmark is described by the fraction of its
//! execution time that is bound by GPU-memory bandwidth and by how completely
//! larger flits amortise that time. The published qualitative behaviour
//! (BFS and MUM highly bandwidth-sensitive, CP/RAY/LPS nearly insensitive) is
//! what the constants are calibrated to; see DESIGN.md for the substitution
//! rationale.

use crate::pattern::PacketShape;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Benchmark suite a GPU benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSuite {
    /// NVIDIA CUDA SDK samples (upper-case names in Figure 1-1).
    CudaSdk,
    /// Rodinia heterogeneous-computing suite (lower-case names).
    Rodinia,
    /// ISPASS-2009 / GPGPU-Sim workloads used in Section 3.4.2.
    Ispass,
}

/// An analytically-modelled GPU benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuBenchmark {
    /// Benchmark name as it appears in the figure.
    pub name: String,
    /// Suite the benchmark belongs to.
    pub suite: BenchmarkSuite,
    /// Number of kernel launches (shown in parentheses in Figure 1-1).
    pub kernel_launches: u32,
    /// Fraction of execution time bound by GPU-memory bandwidth at the 32 B
    /// baseline flit size (0..1).
    pub memory_fraction: f64,
    /// Residual fraction of the memory time that larger flits cannot remove
    /// (poor coalescing, latency-bound accesses; 0..1).
    pub residual: f64,
}

impl GpuBenchmark {
    /// Creates a benchmark description.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]`.
    #[must_use]
    pub fn new(
        name: &str,
        suite: BenchmarkSuite,
        kernel_launches: u32,
        memory_fraction: f64,
        residual: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&memory_fraction));
        assert!((0.0..=1.0).contains(&residual));
        Self {
            name: name.to_string(),
            suite,
            kernel_launches,
            memory_fraction,
            residual,
        }
    }

    /// Relative memory time when the flit size is `flit_bytes` (1.0 at the
    /// 32 B baseline, approaching `residual` for very large flits).
    #[must_use]
    pub fn memory_time_scale(&self, flit_bytes: u32) -> f64 {
        assert!(flit_bytes >= 32, "baseline flit size is 32 B");
        let amortisation = 32.0 / f64::from(flit_bytes);
        self.residual + (1.0 - self.residual) * amortisation
    }

    /// Speedup over the 32 B baseline when using `flit_bytes` flits
    /// (an Amdahl-style model over the memory-bound fraction).
    #[must_use]
    pub fn speedup(&self, flit_bytes: u32) -> f64 {
        let scaled =
            1.0 - self.memory_fraction + self.memory_fraction * self.memory_time_scale(flit_bytes);
        1.0 / scaled
    }

    /// Speedup expressed in percent over the baseline.
    #[must_use]
    pub fn speedup_percent(&self, flit_bytes: u32) -> f64 {
        (self.speedup(flit_bytes) - 1.0) * 100.0
    }

    /// Bandwidth class this benchmark demands from the NoC, derived from its
    /// memory-bound fraction.
    #[must_use]
    pub fn bandwidth_class(&self) -> BandwidthClass {
        if self.memory_fraction >= 0.30 {
            BandwidthClass::High
        } else if self.memory_fraction >= 0.15 {
            BandwidthClass::MediumHigh
        } else if self.memory_fraction >= 0.05 {
            BandwidthClass::MediumLow
        } else {
            BandwidthClass::Low
        }
    }
}

/// The Figure 1-1 speedup study: a catalog of benchmarks and the flit sizes
/// to sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpeedupModel {
    /// The benchmarks included in the study.
    pub benchmarks: Vec<GpuBenchmark>,
    /// Baseline flit size in bytes (32).
    pub baseline_flit_bytes: u32,
    /// Large flit size in bytes (1024).
    pub large_flit_bytes: u32,
}

impl GpuSpeedupModel {
    /// The benchmark catalog calibrated to the qualitative shape of
    /// Figure 1-1: most benchmarks below 1 % speedup, a handful substantially
    /// higher, the largest around 63 %.
    #[must_use]
    pub fn figure_1_1() -> Self {
        use BenchmarkSuite::{CudaSdk, Rodinia};
        let benchmarks = vec![
            // CUDA SDK samples (upper case), kernel launches in parentheses
            // in the original figure.
            GpuBenchmark::new("BFS", CudaSdk, 12, 0.420, 0.031),
            GpuBenchmark::new("MUM", CudaSdk, 2, 0.330, 0.040),
            GpuBenchmark::new("LIB", CudaSdk, 50, 0.085, 0.200),
            GpuBenchmark::new("RAY", CudaSdk, 1, 0.006, 0.300),
            GpuBenchmark::new("STO", CudaSdk, 1, 0.004, 0.400),
            GpuBenchmark::new("CP", CudaSdk, 1, 0.003, 0.400),
            GpuBenchmark::new("LPS", CudaSdk, 1, 0.008, 0.300),
            GpuBenchmark::new("NN", CudaSdk, 4, 0.005, 0.350),
            // Rodinia benchmarks (lower case).
            GpuBenchmark::new("backprop", Rodinia, 2, 0.090, 0.250),
            GpuBenchmark::new("hotspot", Rodinia, 1, 0.007, 0.300),
            GpuBenchmark::new("srad", Rodinia, 4, 0.060, 0.300),
            GpuBenchmark::new("needle", Rodinia, 255, 0.009, 0.400),
            GpuBenchmark::new("kmeans", Rodinia, 3, 0.150, 0.150),
            GpuBenchmark::new("lud", Rodinia, 46, 0.004, 0.450),
            GpuBenchmark::new("streamcluster", Rodinia, 650, 0.012, 0.350),
            GpuBenchmark::new("bfs-rodinia", Rodinia, 24, 0.280, 0.060),
        ];
        Self {
            benchmarks,
            baseline_flit_bytes: 32,
            large_flit_bytes: 1024,
        }
    }

    /// Rows of Figure 1-1: `(name, kernel launches, speedup %)` for the
    /// large-flit configuration.
    #[must_use]
    pub fn rows(&self) -> Vec<(String, u32, f64)> {
        self.benchmarks
            .iter()
            .map(|b| {
                (
                    b.name.clone(),
                    b.kernel_launches,
                    b.speedup_percent(self.large_flit_bytes),
                )
            })
            .collect()
    }

    /// The maximum speedup (in percent) over all benchmarks.
    #[must_use]
    pub fn max_speedup_percent(&self) -> f64 {
        self.rows().iter().map(|r| r.2).fold(0.0, f64::max)
    }

    /// Number of benchmarks whose speedup stays below `threshold_percent`.
    #[must_use]
    pub fn count_below(&self, threshold_percent: f64) -> usize {
        self.rows()
            .iter()
            .filter(|r| r.2 < threshold_percent)
            .count()
    }
}

/// One application mapped onto clusters in the real-application scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappedApplication {
    /// The benchmark being run.
    pub benchmark: GpuBenchmark,
    /// Clusters (of GPU cores) the application occupies.
    pub clusters: Vec<ClusterId>,
    /// Relative memory-traffic intensity (packets per core per cycle at unit
    /// offered load), derived from the benchmark's memory-bound fraction.
    pub intensity: f64,
}

/// The real-application traffic of Section 3.4.2: MUM, BFS, CP, RAY and LPS
/// on 12 GPU clusters exchanging data with 4 memory clusters.
#[derive(Debug, Clone)]
pub struct RealApplicationTraffic {
    topology: ClusterTopology,
    shape: PacketShape,
    load: OfferedLoad,
    apps: Vec<MappedApplication>,
    /// Application index serving each GPU cluster (None for memory clusters).
    cluster_app: Vec<Option<usize>>,
    memory_clusters: Vec<ClusterId>,
    rng: StdRng,
}

impl RealApplicationTraffic {
    /// Builds the paper's mapping: MUM on clusters 0-4 (20 cores), BFS on 5,
    /// CP on 6, RAY on 7, LPS on 8-11 (16 cores); clusters 12-15 hold memory.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not have 16 clusters of 4 cores.
    #[must_use]
    pub fn paper_mapping(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        assert_eq!(
            topology.num_clusters(),
            16,
            "the paper maps onto 16 clusters"
        );
        assert_eq!(topology.cores_per_cluster(), 4);
        use BenchmarkSuite::Ispass;
        let catalog = [
            ("MUM", 0.330, 0.040, 0..5),
            ("BFS", 0.420, 0.031, 5..6),
            ("CP", 0.003, 0.400, 6..7),
            ("RAY", 0.006, 0.300, 7..8),
            ("LPS", 0.008, 0.300, 8..12),
        ];
        let mut apps = Vec::new();
        let mut cluster_app = vec![None; 16];
        for (idx, (name, mem_frac, residual, range)) in catalog.into_iter().enumerate() {
            let benchmark = GpuBenchmark::new(name, Ispass, 1, mem_frac, residual);
            let clusters: Vec<ClusterId> = range.clone().map(ClusterId).collect();
            for c in range {
                cluster_app[c] = Some(idx);
            }
            // Memory intensity grows with how memory-bound the benchmark is;
            // even compute-bound kernels send some traffic.
            let intensity = 0.1 + 0.9 * (benchmark.memory_fraction / 0.42).min(1.0);
            apps.push(MappedApplication {
                benchmark,
                clusters,
                intensity,
            });
        }
        let memory_clusters = (12..16).map(ClusterId).collect();
        Self {
            topology,
            shape,
            load,
            apps,
            cluster_app,
            memory_clusters,
            rng: StdRng::seed_from_u64(seed ^ 0x4750_5553),
        }
    }

    /// The mapped applications.
    #[must_use]
    pub fn applications(&self) -> &[MappedApplication] {
        &self.apps
    }

    /// The memory clusters.
    #[must_use]
    pub fn memory_clusters(&self) -> &[ClusterId] {
        &self.memory_clusters
    }

    fn is_memory_cluster(&self, cluster: ClusterId) -> bool {
        self.memory_clusters.contains(&cluster)
    }

    fn app_of_cluster(&self, cluster: ClusterId) -> Option<&MappedApplication> {
        self.cluster_app[cluster.0].map(|i| &self.apps[i])
    }

    /// Total memory-traffic intensity of one GPU cluster (its application's
    /// intensity, or 0 for memory clusters).
    fn cluster_intensity(&self, cluster: ClusterId) -> f64 {
        self.app_of_cluster(cluster)
            .map(|a| a.intensity)
            .unwrap_or(0.0)
    }

    fn random_core_in(&mut self, cluster: ClusterId) -> CoreId {
        let local = self.rng.gen_range(0..self.topology.cores_per_cluster());
        cluster.core(local, self.topology.cores_per_cluster())
    }

    fn sample_gpu_cluster_by_intensity(&mut self) -> ClusterId {
        let weights: Vec<f64> = (0..self.topology.num_clusters())
            .map(|c| self.cluster_intensity(ClusterId(c)))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut draw = self.rng.gen_range(0.0..total.max(1e-12));
        for (c, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if draw < *w {
                return ClusterId(c);
            }
            draw -= *w;
        }
        ClusterId(0)
    }
}

impl TrafficModel for RealApplicationTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let src_cluster = self.topology.cluster_of(src);
        let (dst_cluster, class, probability) = if self.is_memory_cluster(src_cluster) {
            // Memory clusters reply to GPU clusters in proportion to the
            // requests they receive.
            let dst = self.sample_gpu_cluster_by_intensity();
            let class = self
                .app_of_cluster(dst)
                .map(|a| a.benchmark.bandwidth_class())
                .unwrap_or(BandwidthClass::Low);
            (dst, class, self.load.value())
        } else {
            // GPU cores request data from a random memory cluster with a
            // probability scaled by their application's memory intensity.
            let app_intensity = self.cluster_intensity(src_cluster);
            let idx = self.rng.gen_range(0..self.memory_clusters.len());
            let dst = self.memory_clusters[idx];
            let class = self
                .app_of_cluster(src_cluster)
                .map(|a| a.benchmark.bandwidth_class())
                .unwrap_or(BandwidthClass::Low);
            (dst, class, self.load.value() * app_intensity)
        };
        if !self.rng.gen_bool(probability.clamp(0.0, 1.0)) {
            return None;
        }
        let dst = self.random_core_in(dst_cluster);
        Some(PacketDescriptor {
            src,
            dst,
            num_flits: self.shape.num_flits,
            flit_bits: self.shape.flit_bits,
            class,
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        if self.is_memory_cluster(src) {
            self.app_of_cluster(dst)
                .map(|a| a.benchmark.bandwidth_class())
                .unwrap_or(BandwidthClass::Low)
        } else if self.is_memory_cluster(dst) {
            self.app_of_cluster(src)
                .map(|a| a.benchmark.bandwidth_class())
                .unwrap_or(BandwidthClass::Low)
        } else {
            BandwidthClass::Low
        }
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        // Memory clusters reply in proportion to the aggregate request rate;
        // GPU clusters inject in proportion to their application's memory
        // intensity. Normalised so the chip-wide mean is 1.
        let n = self.topology.num_clusters();
        let raw: Vec<f64> = (0..n)
            .map(|c| {
                let cluster = ClusterId(c);
                if self.is_memory_cluster(cluster) {
                    let gpu_total: f64 = (0..n).map(|g| self.cluster_intensity(ClusterId(g))).sum();
                    gpu_total / self.memory_clusters.len() as f64
                } else {
                    self.cluster_intensity(cluster)
                }
            })
            .collect();
        let mean: f64 = raw.iter().sum::<f64>() / n as f64;
        if mean > 0.0 {
            raw[src.0] / mean
        } else {
            1.0
        }
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        if src == dst {
            return 0.0;
        }
        if self.is_memory_cluster(src) {
            // Replies are spread over GPU clusters by intensity.
            let total: f64 = (0..self.topology.num_clusters())
                .map(|c| self.cluster_intensity(ClusterId(c)))
                .sum();
            if total == 0.0 {
                0.0
            } else {
                self.cluster_intensity(dst) / total
            }
        } else if self.is_memory_cluster(dst) {
            1.0 / self.memory_clusters.len() as f64
        } else {
            0.0
        }
    }

    fn name(&self) -> String {
        "real-application".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_1_shape_most_benchmarks_below_one_percent() {
        let model = GpuSpeedupModel::figure_1_1();
        let n = model.benchmarks.len();
        assert!(n >= 12, "need a reasonable benchmark population");
        // "most of the benchmarks show very modest performance improvement of
        // less than below 1%" — at least half the catalog stays under 1 %.
        assert!(
            model.count_below(1.0) * 2 >= n,
            "only {} of {} benchmarks below 1%",
            model.count_below(1.0),
            n
        );
        // "a few of the benchmarks show considerable speedup of up to 63%".
        let max = model.max_speedup_percent();
        assert!((55.0..=70.0).contains(&max), "max speedup {max}%");
    }

    #[test]
    fn speedup_is_monotone_in_flit_size() {
        let b = GpuBenchmark::new("x", BenchmarkSuite::CudaSdk, 1, 0.4, 0.05);
        let mut last = 1.0;
        for flit in [32, 64, 128, 256, 512, 1024] {
            let s = b.speedup(flit);
            assert!(s >= last, "speedup must not decrease with flit size");
            last = s;
        }
        assert!((b.speedup(32) - 1.0).abs() < 1e-12, "baseline speedup is 1");
    }

    #[test]
    fn bandwidth_class_tracks_memory_fraction() {
        assert_eq!(
            GpuBenchmark::new("hi", BenchmarkSuite::Ispass, 1, 0.4, 0.1).bandwidth_class(),
            BandwidthClass::High
        );
        assert_eq!(
            GpuBenchmark::new("lo", BenchmarkSuite::Ispass, 1, 0.01, 0.1).bandwidth_class(),
            BandwidthClass::Low
        );
    }

    fn real_app() -> RealApplicationTraffic {
        RealApplicationTraffic::paper_mapping(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(0.5),
            17,
        )
    }

    #[test]
    fn paper_mapping_covers_12_gpu_and_4_memory_clusters() {
        let t = real_app();
        assert_eq!(t.memory_clusters().len(), 4);
        let gpu_clusters: usize = t.applications().iter().map(|a| a.clusters.len()).sum();
        assert_eq!(gpu_clusters, 12);
        // MUM occupies 5 clusters (20 cores), LPS 4 clusters (16 cores).
        assert_eq!(t.applications()[0].clusters.len(), 5);
        assert_eq!(t.applications()[4].clusters.len(), 4);
    }

    #[test]
    fn gpu_cores_talk_to_memory_clusters_only() {
        let mut t = real_app();
        let topo = ClusterTopology::paper_default();
        for cycle in 0..20_000 {
            let src = CoreId((cycle % 48) as usize); // a GPU core
            if let Some(p) = t.next_packet(cycle, src) {
                let dst_cluster = topo.cluster_of(p.dst);
                assert!(dst_cluster.0 >= 12, "GPU cores must target memory clusters");
            }
        }
    }

    #[test]
    fn memory_bound_apps_demand_high_bandwidth_classes() {
        let t = real_app();
        // MUM cluster (0) ↔ memory cluster (12) is a high-bandwidth flow.
        assert_eq!(
            t.demand_class(ClusterId(0), ClusterId(12)),
            BandwidthClass::High
        );
        // CP cluster (6) ↔ memory is low bandwidth.
        assert_eq!(
            t.demand_class(ClusterId(6), ClusterId(12)),
            BandwidthClass::Low
        );
        // Replies inherit the requester's class.
        assert_eq!(
            t.demand_class(ClusterId(12), ClusterId(5)),
            BandwidthClass::High
        );
    }

    #[test]
    fn memory_intense_apps_generate_more_traffic() {
        let mut t = real_app();
        let mut mum_packets = 0;
        let mut cp_packets = 0;
        for cycle in 0..30_000 {
            // Core 0 runs MUM, core 24 runs CP (cluster 6).
            if t.next_packet(cycle, CoreId(0)).is_some() {
                mum_packets += 1;
            }
            if t.next_packet(cycle, CoreId(24)).is_some() {
                cp_packets += 1;
            }
        }
        assert!(
            mum_packets > cp_packets * 2,
            "MUM ({mum_packets}) must generate clearly more traffic than CP ({cp_packets})"
        );
    }

    #[test]
    fn volume_shares_normalise() {
        let t = real_app();
        // A GPU cluster splits its volume over the 4 memory clusters.
        let total: f64 = (0..16)
            .map(|d| t.volume_share(ClusterId(0), ClusterId(d)))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        // A memory cluster splits its volume over the GPU clusters.
        let total: f64 = (0..16)
            .map(|d| t.volume_share(ClusterId(13), ClusterId(d)))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
