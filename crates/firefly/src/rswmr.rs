//! Reservation-assisted Single-Write-Multiple-Read (R-SWMR) channels.
//!
//! In an SWMR crossbar each source cluster owns one write channel that every
//! other cluster can read. Keeping all detectors of all readers powered would
//! waste energy, so Firefly adds a *reservation* broadcast (Figure 2-3 of the
//! thesis): before sending a packet the source broadcasts a small reservation
//! flit carrying the destination id (and, in d-HetPNoC, the wavelength
//! identifiers); only the addressed destination then powers the detectors of
//! the source's data channel, and only for the duration of the packet.
//!
//! This module models the channel bookkeeping: reservation flit contents and
//! size, which destination is currently listening, and how many
//! detector-cycles were spent — the quantity that makes R-SWMR energy
//! efficient compared to an always-on SWMR crossbar.

use pnoc_noc::ids::{ClusterId, PacketId};
use serde::{Deserialize, Serialize};

/// The reservation flit broadcast on a cluster's reservation channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationFlit {
    /// Source cluster (owner of the write channel being reserved).
    pub src: ClusterId,
    /// Destination cluster that should power its detectors.
    pub dst: ClusterId,
    /// Packet the reservation is for.
    pub packet: PacketId,
    /// Packet size in flits (the destination keeps its detectors on for this
    /// long).
    pub packet_flits: u32,
    /// Wavelength identifiers the destination must listen on. Empty for
    /// Firefly (the destination listens on the source's whole static
    /// channel); populated by d-HetPNoC.
    pub wavelength_identifiers: Vec<u16>,
}

impl ReservationFlit {
    /// Size of the reservation flit in bits: destination id, packet length
    /// and the wavelength identifiers (each `identifier_bits` wide).
    #[must_use]
    pub fn size_bits(&self, cluster_id_bits: u32, length_bits: u32, identifier_bits: u32) -> u32 {
        cluster_id_bits + length_bits + identifier_bits * self.wavelength_identifiers.len() as u32
    }
}

/// State of one source cluster's R-SWMR write channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RswmrChannel {
    /// The cluster that owns (writes) this channel.
    pub owner: ClusterId,
    /// Number of DWDM wavelengths in the channel.
    pub wavelengths: usize,
    /// The destination currently listening, if any.
    listener: Option<(ClusterId, PacketId)>,
    /// Total detector-cycles spent listening on this channel.
    detector_cycles: u64,
    /// Total reservations broadcast.
    reservations: u64,
}

impl RswmrChannel {
    /// Creates an idle channel.
    #[must_use]
    pub fn new(owner: ClusterId, wavelengths: usize) -> Self {
        Self {
            owner,
            wavelengths,
            listener: None,
            detector_cycles: 0,
            reservations: 0,
        }
    }

    /// True when no destination is listening (the channel is free).
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.listener.is_none()
    }

    /// The destination currently listening, if any.
    #[must_use]
    pub fn listener(&self) -> Option<ClusterId> {
        self.listener.map(|(c, _)| c)
    }

    /// Processes a reservation: the destination powers its detectors.
    ///
    /// Returns `false` (and changes nothing) if another destination is still
    /// listening — the source must retry later.
    pub fn reserve(&mut self, reservation: &ReservationFlit) -> bool {
        assert_eq!(
            reservation.src, self.owner,
            "reservation broadcast on the wrong channel"
        );
        if self.listener.is_some() {
            return false;
        }
        self.listener = Some((reservation.dst, reservation.packet));
        self.reservations += 1;
        true
    }

    /// Advances one cycle; while a listener is attached its detectors are
    /// powered on every wavelength of the channel.
    pub fn tick(&mut self) {
        if self.listener.is_some() {
            self.detector_cycles += self.wavelengths as u64;
        }
    }

    /// Ends the transmission of `packet`, powering the detectors down.
    ///
    /// Returns `false` if that packet was not the one being listened to.
    pub fn release(&mut self, packet: PacketId) -> bool {
        match self.listener {
            Some((_, p)) if p == packet => {
                self.listener = None;
                true
            }
            _ => false,
        }
    }

    /// Total wavelength-cycles during which destination detectors were
    /// powered.
    #[must_use]
    pub fn detector_cycles(&self) -> u64 {
        self.detector_cycles
    }

    /// Total reservations accepted on this channel.
    #[must_use]
    pub fn reservations(&self) -> u64 {
        self.reservations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reservation(dst: usize, packet: u64, identifiers: usize) -> ReservationFlit {
        ReservationFlit {
            src: ClusterId(0),
            dst: ClusterId(dst),
            packet: PacketId(packet),
            packet_flits: 64,
            wavelength_identifiers: vec![0; identifiers],
        }
    }

    #[test]
    fn reservation_flit_size_matches_section_3_4_1_1() {
        // Firefly: destination id (4 bits for 16 clusters) + length, no
        // wavelength identifiers.
        let firefly = reservation(3, 1, 0);
        assert_eq!(firefly.size_bits(4, 8, 6), 12);
        // d-HetPNoC BW set 1: up to 8 identifiers of 6 bits = 48 bits extra.
        let dhet = reservation(3, 1, 8);
        assert_eq!(dhet.size_bits(4, 8, 6), 4 + 8 + 48);
        // BW set 3: 64 identifiers of 9 bits.
        let dhet3 = reservation(3, 1, 64);
        assert_eq!(dhet3.size_bits(4, 8, 9), 4 + 8 + 576);
    }

    #[test]
    fn only_one_listener_at_a_time() {
        let mut ch = RswmrChannel::new(ClusterId(0), 4);
        assert!(ch.is_free());
        assert!(ch.reserve(&reservation(5, 1, 0)));
        assert!(!ch.is_free());
        assert_eq!(ch.listener(), Some(ClusterId(5)));
        // A second reservation is refused until the first releases.
        assert!(!ch.reserve(&reservation(9, 2, 0)));
        assert!(!ch.release(PacketId(2)), "wrong packet cannot release");
        assert!(ch.release(PacketId(1)));
        assert!(ch.reserve(&reservation(9, 2, 0)));
        assert_eq!(ch.reservations(), 2);
    }

    #[test]
    fn detector_cycles_accumulate_only_while_listening() {
        let mut ch = RswmrChannel::new(ClusterId(0), 4);
        ch.tick();
        assert_eq!(ch.detector_cycles(), 0);
        ch.reserve(&reservation(2, 7, 0));
        ch.tick();
        ch.tick();
        ch.release(PacketId(7));
        ch.tick();
        // 2 cycles × 4 wavelengths.
        assert_eq!(ch.detector_cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "wrong channel")]
    fn reservation_on_wrong_channel_panics() {
        let mut ch = RswmrChannel::new(ClusterId(3), 4);
        let _ = ch.reserve(&reservation(5, 1, 0));
    }
}
