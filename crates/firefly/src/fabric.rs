//! The Firefly photonic fabric: uniform, static wavelength allocation.
//!
//! Every cluster's write channel carries exactly `total wavelengths / 16`
//! DWDM wavelengths (4, 16 or 32 for the three bandwidth sets, Table 3-3).
//! Every transmission uses the full channel — "all the modulators and
//! demodulators are on for any communication ... irrespective of the
//! required data rate" (Sections 2.2.1 and 3.3.1) — so a source can only
//! drive one packet at a time and a high-bandwidth application receives no
//! more bandwidth than a low-bandwidth one.

use pnoc_faults::{FaultEvent, FaultSurface};
use pnoc_noc::ids::ClusterId;
use pnoc_sim::config::SimConfig;
use pnoc_sim::system::PhotonicFabric;

/// The uniform, statically-allocated Firefly fabric.
#[derive(Debug, Clone)]
pub struct FireflyFabric {
    num_clusters: usize,
    wavelengths_per_channel: usize,
    total_wavelengths: usize,
    reservation_cycles: u64,
    faults: FaultSurface,
}

impl FireflyFabric {
    /// The paper's crossbar radix: 16 clusters share the R-SWMR crossbar, so
    /// each write channel gets `total wavelengths / 16` wavelengths
    /// (Table 3-3). This is the default of the `radix` parameter declared by
    /// the `"firefly"` registry entry.
    pub const DEFAULT_RADIX: usize = 16;

    /// Builds the fabric for a simulation configuration at the paper's
    /// defaults (radix 16, single-cycle reservation).
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_params(config, Self::DEFAULT_RADIX, 1)
    }

    /// Builds the fabric with an explicit crossbar radix (the uniform static
    /// allocation divisor: each write channel gets `total wavelengths /
    /// radix` wavelengths, at least 1) and reservation latency. This is what
    /// the registry entry's `radix` / `reservation_cycles` parameters feed.
    ///
    /// # Panics
    ///
    /// Panics if `radix` or `reservation_cycles` is zero.
    #[must_use]
    pub fn with_params(config: &SimConfig, radix: usize, reservation_cycles: u64) -> Self {
        assert!(radix > 0, "radix must be positive");
        assert!(reservation_cycles > 0, "reservation takes at least a cycle");
        let total_wavelengths = config.bandwidth_set.total_wavelengths();
        let num_clusters = config.topology.num_clusters();
        Self {
            num_clusters,
            wavelengths_per_channel: (total_wavelengths / radix).max(1),
            total_wavelengths,
            reservation_cycles,
            faults: FaultSurface::new(num_clusters),
        }
    }

    /// Wavelengths of each cluster's write channel.
    #[must_use]
    pub fn wavelengths_per_channel(&self) -> usize {
        self.wavelengths_per_channel
    }

    /// Number of clusters sharing the crossbar.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }
}

impl PhotonicFabric for FireflyFabric {
    fn architecture_name(&self) -> &str {
        "firefly"
    }

    fn pre_cycle(&mut self, _cycle: u64) {}

    fn skip_cycles(&mut self, _from: u64, _to: u64) {
        // Firefly has no per-cycle control-plane state to advance.
    }

    fn pool_size(&self, _src: ClusterId) -> usize {
        self.wavelengths_per_channel
    }

    fn wavelengths_for(&self, src: ClusterId, dst: ClusterId) -> usize {
        // A stuck/detuned MRR ring at either endpoint pins the transfer to a
        // single wavelength.
        if self.faults.ring_stuck(src.0) || self.faults.ring_stuck(dst.0) {
            return 1;
        }
        // All wavelengths of the channel are used for every transmission,
        // regardless of the application's bandwidth class — so a degraded
        // class (or dimmed laser) derates the whole channel: Firefly cannot
        // steer transfers away from the damaged wavelengths.
        (self.wavelengths_per_channel / self.faults.max_divisor() as usize).max(1)
    }

    fn reservation_cycles(&self, _src: ClusterId, _dst: ClusterId) -> u64 {
        self.reservation_cycles
    }

    fn total_data_wavelengths(&self) -> usize {
        self.total_wavelengths
    }

    fn allocation_snapshot(&self) -> Vec<usize> {
        vec![self.wavelengths_per_channel; self.num_clusters]
    }

    fn apply_fault(&mut self, event: &FaultEvent) {
        self.faults.apply(event);
    }

    fn clear_fault(&mut self, event: &FaultEvent) {
        self.faults.clear(event);
    }

    fn link_up(&self, cluster: ClusterId) -> bool {
        self.faults.link_up(cluster.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::config::BandwidthSet;

    #[test]
    fn channel_widths_match_table_3_3() {
        for (set, expected) in [
            (BandwidthSet::Set1, 4),
            (BandwidthSet::Set2, 16),
            (BandwidthSet::Set3, 32),
        ] {
            let fabric = FireflyFabric::new(&SimConfig::paper_default(set));
            assert_eq!(fabric.wavelengths_per_channel(), expected);
            assert_eq!(fabric.pool_size(ClusterId(0)), expected);
            assert_eq!(fabric.wavelengths_for(ClusterId(0), ClusterId(5)), expected);
        }
    }

    #[test]
    fn allocation_is_uniform_across_clusters() {
        let fabric = FireflyFabric::new(&SimConfig::paper_default(BandwidthSet::Set1));
        let alloc = fabric.allocation_snapshot();
        assert_eq!(alloc.len(), 16);
        assert!(alloc.iter().all(|&w| w == 4));
        // The whole aggregate bandwidth budget is exactly used.
        assert_eq!(alloc.iter().sum::<usize>(), fabric.total_data_wavelengths());
    }

    #[test]
    fn reservation_takes_one_cycle() {
        let fabric = FireflyFabric::new(&SimConfig::paper_default(BandwidthSet::Set3));
        assert_eq!(fabric.reservation_cycles(ClusterId(1), ClusterId(2)), 1);
        assert_eq!(fabric.architecture_name(), "firefly");
    }

    #[test]
    fn faults_derate_the_channel_and_repairs_restore_it() {
        use pnoc_sim::system::PhotonicFabric as _;
        let mut fabric = FireflyFabric::new(&SimConfig::paper_default(BandwidthSet::Set2));
        let healthy = fabric.wavelengths_for(ClusterId(0), ClusterId(5));
        assert_eq!(healthy, 16);
        let plan = pnoc_faults::FaultPlan::parse(
            "wavelength-degrade@c10-20:class-high/2,ring-stuck@c10-20:sw3,link-fail@c10-20:sw7",
        )
        .unwrap();
        for event in plan.events() {
            fabric.apply_fault(event);
        }
        // Class-blind Firefly derates the whole channel by the worst class.
        assert_eq!(fabric.wavelengths_for(ClusterId(0), ClusterId(5)), 8);
        // A stuck ring at either endpoint pins transfers to one wavelength.
        assert_eq!(fabric.wavelengths_for(ClusterId(3), ClusterId(5)), 1);
        assert_eq!(fabric.wavelengths_for(ClusterId(0), ClusterId(3)), 1);
        assert!(!fabric.link_up(ClusterId(7)));
        assert!(fabric.link_up(ClusterId(6)));
        for event in plan.events() {
            fabric.clear_fault(event);
        }
        assert_eq!(fabric.wavelengths_for(ClusterId(0), ClusterId(5)), healthy);
        assert!(fabric.link_up(ClusterId(7)));
    }

    #[test]
    fn radix_parameter_scales_the_channel_width() {
        let config = SimConfig::paper_default(BandwidthSet::Set1);
        // Halving the radix doubles each channel's wavelength share.
        let wide = FireflyFabric::with_params(&config, 8, 1);
        assert_eq!(wide.wavelengths_per_channel(), 8);
        // A radix beyond the wavelength budget still leaves one wavelength.
        let starved = FireflyFabric::with_params(&config, 128, 2);
        assert_eq!(starved.wavelengths_per_channel(), 1);
        assert_eq!(starved.reservation_cycles(ClusterId(0), ClusterId(1)), 2);
        // The default constructor is the paper point.
        assert_eq!(
            FireflyFabric::new(&config).wavelengths_per_channel(),
            FireflyFabric::with_params(&config, FireflyFabric::DEFAULT_RADIX, 1)
                .wavelengths_per_channel()
        );
    }
}
