//! The Firefly photonic fabric: uniform, static wavelength allocation.
//!
//! Every cluster's write channel carries exactly `total wavelengths / 16`
//! DWDM wavelengths (4, 16 or 32 for the three bandwidth sets, Table 3-3).
//! Every transmission uses the full channel — "all the modulators and
//! demodulators are on for any communication ... irrespective of the
//! required data rate" (Sections 2.2.1 and 3.3.1) — so a source can only
//! drive one packet at a time and a high-bandwidth application receives no
//! more bandwidth than a low-bandwidth one.

use pnoc_noc::ids::ClusterId;
use pnoc_sim::config::SimConfig;
use pnoc_sim::system::PhotonicFabric;

/// The uniform, statically-allocated Firefly fabric.
#[derive(Debug, Clone)]
pub struct FireflyFabric {
    num_clusters: usize,
    wavelengths_per_channel: usize,
    total_wavelengths: usize,
    reservation_cycles: u64,
}

impl FireflyFabric {
    /// Builds the fabric for a simulation configuration.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self {
            num_clusters: config.topology.num_clusters(),
            wavelengths_per_channel: config.bandwidth_set.firefly_wavelengths_per_channel(),
            total_wavelengths: config.bandwidth_set.total_wavelengths(),
            reservation_cycles: 1,
        }
    }

    /// Wavelengths of each cluster's write channel.
    #[must_use]
    pub fn wavelengths_per_channel(&self) -> usize {
        self.wavelengths_per_channel
    }

    /// Number of clusters sharing the crossbar.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }
}

impl PhotonicFabric for FireflyFabric {
    fn architecture_name(&self) -> &str {
        "firefly"
    }

    fn pre_cycle(&mut self, _cycle: u64) {}

    fn pool_size(&self, _src: ClusterId) -> usize {
        self.wavelengths_per_channel
    }

    fn wavelengths_for(&self, _src: ClusterId, _dst: ClusterId) -> usize {
        // All wavelengths of the channel are used for every transmission,
        // regardless of the application's bandwidth class.
        self.wavelengths_per_channel
    }

    fn reservation_cycles(&self, _src: ClusterId, _dst: ClusterId) -> u64 {
        self.reservation_cycles
    }

    fn total_data_wavelengths(&self) -> usize {
        self.total_wavelengths
    }

    fn allocation_snapshot(&self) -> Vec<usize> {
        vec![self.wavelengths_per_channel; self.num_clusters]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::config::BandwidthSet;

    #[test]
    fn channel_widths_match_table_3_3() {
        for (set, expected) in [
            (BandwidthSet::Set1, 4),
            (BandwidthSet::Set2, 16),
            (BandwidthSet::Set3, 32),
        ] {
            let fabric = FireflyFabric::new(&SimConfig::paper_default(set));
            assert_eq!(fabric.wavelengths_per_channel(), expected);
            assert_eq!(fabric.pool_size(ClusterId(0)), expected);
            assert_eq!(fabric.wavelengths_for(ClusterId(0), ClusterId(5)), expected);
        }
    }

    #[test]
    fn allocation_is_uniform_across_clusters() {
        let fabric = FireflyFabric::new(&SimConfig::paper_default(BandwidthSet::Set1));
        let alloc = fabric.allocation_snapshot();
        assert_eq!(alloc.len(), 16);
        assert!(alloc.iter().all(|&w| w == 4));
        // The whole aggregate bandwidth budget is exactly used.
        assert_eq!(alloc.iter().sum::<usize>(), fabric.total_data_wavelengths());
    }

    #[test]
    fn reservation_takes_one_cycle() {
        let fabric = FireflyFabric::new(&SimConfig::paper_default(BandwidthSet::Set3));
        assert_eq!(fabric.reservation_cycles(ClusterId(1), ClusterId(2)), 1);
        assert_eq!(fabric.architecture_name(), "firefly");
    }
}
