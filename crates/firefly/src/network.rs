//! Convenience constructors and the registry entry for Firefly simulations.

use crate::fabric::FireflyFabric;
use pnoc_noc::traffic_model::TrafficModel;
use pnoc_sim::config::SimConfig;
use pnoc_sim::engine::CycleNetwork;
use pnoc_sim::params::{ParamSchema, ResolvedParams};
use pnoc_sim::registry::{register_architecture, ArchitectureBuilder, Provisioning};
use pnoc_sim::system::PhotonicSystem;
use std::sync::Arc;

/// Builds a ready-to-run Firefly system for the given traffic model at the
/// paper's defaults (radix 16, single-cycle reservation). For other design
/// points use the registry entry's parameters (`firefly{radix=...}`) or
/// [`FireflyFabric::with_params`] directly.
pub fn build_firefly_system<T: TrafficModel>(
    config: SimConfig,
    traffic: T,
) -> PhotonicSystem<FireflyFabric, T> {
    let fabric = FireflyFabric::new(&config);
    PhotonicSystem::new(config, fabric, traffic)
}

/// The Firefly baseline's [`ArchitectureBuilder`], registered under the name
/// `"firefly"`.
///
/// Declared parameters:
///
/// * `radix` (int, default 16) — clusters sharing the R-SWMR crossbar; each
///   write channel gets `total wavelengths / radix` wavelengths (at least
///   1). The paper's Table 3-3 point is radix 16.
/// * `reservation_cycles` (int, default 1) — latency of the reservation
///   broadcast preceding every photonic transfer.
#[derive(Debug, Clone, Copy, Default)]
pub struct FireflyArchitecture;

impl ArchitectureBuilder for FireflyArchitecture {
    fn name(&self) -> &str {
        "firefly"
    }

    fn label(&self) -> String {
        "Firefly".to_string()
    }

    fn provisioning(&self) -> Provisioning {
        Provisioning::Static
    }

    fn param_schema(&self) -> ParamSchema {
        ParamSchema::new()
            .int(
                "radix",
                FireflyFabric::DEFAULT_RADIX as i64,
                2,
                512,
                "clusters sharing the R-SWMR crossbar; each write channel \
                 gets total_wavelengths/radix wavelengths (min 1)",
            )
            .int(
                "reservation_cycles",
                1,
                1,
                16,
                "cycles of the reservation broadcast preceding every \
                 photonic transfer",
            )
    }

    fn build(
        &self,
        config: SimConfig,
        params: &ResolvedParams,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Box<dyn CycleNetwork> {
        let fabric = FireflyFabric::with_params(
            &config,
            params.int("radix") as usize,
            params.int("reservation_cycles") as u64,
        );
        Box::new(PhotonicSystem::new(config, fabric, traffic))
    }
}

/// Registers the Firefly baseline into the process-global architecture
/// registry. Idempotent; usually invoked through the umbrella crate's
/// `install_architectures`.
///
/// Once registered, sweeps run through `pnoc_sim::scenario` — e.g.
/// `ScenarioSpec::new("firefly", "skewed-3").resolve()?.run()` — instead of
/// the per-architecture sweep wrapper this crate used to export.
pub fn register_firefly_architecture() {
    register_architecture(Arc::new(FireflyArchitecture));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_noc::topology::ClusterTopology;
    use pnoc_sim::config::BandwidthSet;
    use pnoc_sim::engine::run_to_completion;
    use pnoc_traffic::pattern::PacketShape;
    use pnoc_traffic::uniform::UniformRandomTraffic;

    fn shape(set: BandwidthSet) -> PacketShape {
        PacketShape::new(set.packet_flits(), set.flit_bits())
    }

    #[test]
    fn firefly_delivers_uniform_traffic() {
        let config = SimConfig::fast(BandwidthSet::Set1);
        let traffic = UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            shape(BandwidthSet::Set1),
            pnoc_noc::traffic_model::OfferedLoad::new(config.estimated_saturation_load() * 0.5),
            config.seed,
        );
        let mut system = build_firefly_system(config, traffic);
        let stats = run_to_completion(&mut system);
        assert!(stats.delivered_packets > 0);
        assert!(stats.accepted_bandwidth_gbps() > 0.0);
        assert_eq!(stats.architecture, "firefly");
    }

    #[test]
    fn firefly_emits_probe_events_through_the_metrics_pipeline() {
        use pnoc_sim::engine::run_to_completion_with;
        use pnoc_sim::metrics::{MetricsProbe, Probe};
        let config = SimConfig::fast(BandwidthSet::Set1);
        let traffic = UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            shape(BandwidthSet::Set1),
            pnoc_noc::traffic_model::OfferedLoad::new(config.estimated_saturation_load() * 0.5),
            config.seed,
        );
        let mut system = build_firefly_system(config, traffic);
        let mut probe = MetricsProbe::for_config(&config);
        let stats = run_to_completion_with(&mut system, &mut [&mut probe]);
        assert!(stats.delivered_packets > 0);
        let report = probe.report();
        assert_eq!(
            report.counter("delivered_packets"),
            Some(stats.delivered_packets),
            "probe event stream must agree with the legacy snapshot"
        );
        assert_eq!(report.counter("delivered_bits"), Some(stats.delivered_bits));
        let latency = report.histogram("latency_cycles").expect("recorded");
        let p95 = latency.percentile(95.0).expect("non-empty");
        assert!(p95 >= latency.percentile(50.0).expect("non-empty"));
        assert!(
            !report.family("delivered_bits_by_node").unwrap().is_empty(),
            "per-node delivery breakdown must be populated"
        );
    }

    #[test]
    fn registry_builder_matches_the_direct_constructor() {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 900;
        config.warmup_cycles = 200;
        let load =
            pnoc_noc::traffic_model::OfferedLoad::new(config.estimated_saturation_load() * 0.6);
        let make = || {
            UniformRandomTraffic::new(
                ClusterTopology::paper_default(),
                shape(BandwidthSet::Set1),
                load,
                config.seed,
            )
        };
        let direct = run_to_completion(&mut build_firefly_system(config, make()));
        let mut via_registry = FireflyArchitecture.build(
            config,
            &FireflyArchitecture.default_params(),
            Box::new(make()),
        );
        let registry_stats = run_to_completion(&mut *via_registry);
        assert_eq!(
            direct, registry_stats,
            "registry path must not change results"
        );
    }

    #[test]
    fn radix_parameter_flows_from_spec_to_fabric() {
        register_firefly_architecture();
        let schema = FireflyArchitecture.param_schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.get("radix").unwrap().kind.bounds_label(), "2..=512");

        // A radix override resolves through the scenario API and changes
        // the measured sweep relative to the paper default.
        let base = pnoc_sim::scenario::ScenarioSpec::new("firefly", "uniform-random")
            .with_effort(pnoc_sim::scenario::Effort::Smoke);
        let swept = base.clone().with_arch_param("radix", 64);
        assert_eq!(swept.id(), "firefly{radix=64}:uniform-random:set1:smoke");
        let default_run = base.resolve().expect("registered").run();
        let starved_run = swept.resolve().expect("within bounds").run();
        assert_ne!(
            default_run.result, starved_run.result,
            "a 64-radix (1-wavelength) channel must change the sweep"
        );

        // Out-of-schema specs fail resolution with the declared catalogue.
        let error = pnoc_sim::scenario::ScenarioSpec::new("firefly{radix=1}", "uniform-random")
            .resolve()
            .expect_err("radix 1 is below the declared minimum");
        assert!(error.to_string().contains("2..=512"), "{error}");
    }

    #[test]
    fn scenario_sweep_finds_a_peak_below_the_aggregate_photonic_limit() {
        register_firefly_architecture();
        let outcome = pnoc_sim::scenario::ScenarioSpec::new("firefly", "uniform-random")
            .with_effort(pnoc_sim::scenario::Effort::Smoke)
            .resolve()
            .expect("firefly was just registered")
            .run();
        let peak = outcome.result.peak_bandwidth_gbps();
        assert!(peak > 0.0, "peak bandwidth must be positive");
        // The photonic crossbar carries 800 Gb/s; including intra-cluster
        // traffic the accepted bandwidth cannot exceed a small multiple of it.
        assert!(peak < 2.0 * 800.0, "peak {peak} Gb/s is implausibly high");
        // Accepted bandwidth must grow between the lightest and the peak load.
        let first = outcome.result.points[0].stats.accepted_bandwidth_gbps();
        assert!(peak >= first);
    }
}
