//! # pnoc-firefly — the crossbar-based Firefly baseline PNoC
//!
//! Firefly (Pan et al., ISCA 2009 [20]) is the baseline architecture of the
//! thesis: a hybrid, hierarchical photonic NoC in which clusters of cores
//! communicate electrically inside the cluster and photonically between
//! clusters over a reservation-assisted Single-Write-Multiple-Read (R-SWMR)
//! crossbar. Every cluster owns a *statically provisioned* write channel of
//! `total wavelengths / 16` DWDM wavelengths; all transmissions use the full
//! channel width regardless of the application's actual bandwidth need —
//! which is exactly the limitation d-HetPNoC removes.
//!
//! * [`rswmr`] — the reservation-assisted SWMR channel mechanics (reservation
//!   flits, detector gating),
//! * [`fabric`] — the [`pnoc_sim::system::PhotonicFabric`] implementation
//!   with uniform static wavelength allocation,
//! * [`network`] — convenience constructors and the `"firefly"` registry
//!   entry used by the scenario-based experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fabric;
pub mod network;
pub mod rswmr;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::fabric::FireflyFabric;
    pub use crate::network::{
        build_firefly_system, register_firefly_architecture, FireflyArchitecture,
    };
    pub use crate::rswmr::{ReservationFlit, RswmrChannel};
}

pub use prelude::*;
