//! Multi-wavelength laser sources.
//!
//! The PNoC needs a multi-wavelength light source (thesis Section 2.1.4).
//! The paper assumes heterogeneously-integrated on-chip sources, citing Heck
//! and Bowers [16] for energy-efficiency and energy-proportionality, and uses
//! 1.5 mW of laser power per wavelength (Table 3-4, after Preston et al.
//! [30]). The launch energy of Table 3-5 (0.15 pJ/bit) is the per-bit cost of
//! that optical power plus coupling overheads at the 12.5 Gb/s line rate.

use crate::units::{gbps_to_bps, mw_to_w, power_to_energy_per_bit_pj};
use serde::{Deserialize, Serialize};

/// Placement of the laser source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaserPlacement {
    /// Off-chip comb laser coupled through fibre.
    OffChip,
    /// On-chip distributed-feedback laser array (the paper's assumption).
    OnChip,
}

/// A multi-wavelength laser source feeding the photonic fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserSource {
    /// Where the laser lives.
    pub placement: LaserPlacement,
    /// Number of wavelengths generated.
    pub num_wavelengths: usize,
    /// Electrical power per wavelength in milli-watts (1.5 in the paper).
    pub power_per_wavelength_mw: f64,
    /// Line rate each wavelength is modulated at, Gb/s.
    pub line_rate_gbps: f64,
    /// Whether the source is energy-proportional (can gate unused
    /// wavelengths), as argued for on-chip sources in [16].
    pub energy_proportional: bool,
}

impl LaserSource {
    /// The on-chip source assumed by the paper, sized for `num_wavelengths`.
    #[must_use]
    pub fn paper_default(num_wavelengths: usize) -> Self {
        Self {
            placement: LaserPlacement::OnChip,
            num_wavelengths,
            power_per_wavelength_mw: 1.5,
            line_rate_gbps: 12.5,
            energy_proportional: true,
        }
    }

    /// Total laser power in milli-watts when `active_wavelengths` are in use.
    /// A non-energy-proportional source burns full power regardless.
    #[must_use]
    pub fn power_mw(&self, active_wavelengths: usize) -> f64 {
        let counted = if self.energy_proportional {
            active_wavelengths.min(self.num_wavelengths)
        } else {
            self.num_wavelengths
        };
        counted as f64 * self.power_per_wavelength_mw
    }

    /// Laser energy per transmitted bit in pico-joules, assuming the
    /// wavelength is fully utilised at the line rate.
    #[must_use]
    pub fn energy_pj_per_bit(&self) -> f64 {
        power_to_energy_per_bit_pj(
            mw_to_w(self.power_per_wavelength_mw),
            gbps_to_bps(self.line_rate_gbps),
        )
    }

    /// Aggregate optical bandwidth of the source in Gb/s.
    #[must_use]
    pub fn aggregate_bandwidth_gbps(&self) -> f64 {
        self.num_wavelengths as f64 * self.line_rate_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scales_with_wavelengths() {
        let laser = LaserSource::paper_default(64);
        assert!((laser.power_mw(64) - 96.0).abs() < 1e-9);
        assert!((laser.power_mw(10) - 15.0).abs() < 1e-9);
        // Active count beyond capacity is clamped.
        assert!((laser.power_mw(1000) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn non_proportional_source_burns_full_power() {
        let mut laser = LaserSource::paper_default(32);
        laser.energy_proportional = false;
        assert!((laser.power_mw(1) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn per_bit_energy_close_to_launch_figure() {
        // 1.5 mW / 12.5 Gb/s = 0.12 pJ/bit, within the 0.15 pJ/bit launch
        // energy of Table 3-5 (which also includes coupling overheads).
        let laser = LaserSource::paper_default(64);
        let e = laser.energy_pj_per_bit();
        assert!((e - 0.12).abs() < 1e-9);
        assert!(e <= 0.15);
    }

    #[test]
    fn aggregate_bandwidth_of_paper_sets() {
        assert!((LaserSource::paper_default(64).aggregate_bandwidth_gbps() - 800.0).abs() < 1e-9);
        assert!((LaserSource::paper_default(512).aggregate_bandwidth_gbps() - 6400.0).abs() < 1e-9);
    }
}
