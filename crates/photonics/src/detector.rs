//! Germanium photo-detectors.
//!
//! The receive side of a photonic channel filters the target wavelength with
//! an MRR and converts it to a photo-current in a germanium p-i-n detector
//! (thesis Section 2.1.2). The detector output is amplified and compared to a
//! threshold to recover the bit. The thesis cites 40 Gb/s waveguide
//! integrated Ge detectors [13][19] with responsivities up to 1.08 A/W [14].
//!
//! The reservation-assisted SWMR flow control (Section 3.3.1) relies on
//! detectors being switched on only for the duration of a packet; the
//! [`PhotoDetector::gate`] / [`PhotoDetector::ungate`] API models that and
//! tracks how long the detector was powered.

use crate::mrr::MicroRingResonator;
use crate::units::fj_to_pj;
use serde::{Deserialize, Serialize};

/// A wavelength-selective germanium photo-detector (filter ring + Ge p-i-n).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotoDetector {
    /// The drop-filter ring in front of the detector.
    pub ring: MicroRingResonator,
    /// Maximum detection rate in Gb/s.
    pub data_rate_gbps: f64,
    /// Responsivity in amperes per watt (1.08 A/W in [14], 0.74 A/W in [18]).
    pub responsivity_a_per_w: f64,
    /// Receiver energy per bit in femto-joules (demodulation side of the
    /// 40 fJ/bit modulator/demodulator figure of Table 3-4).
    pub energy_fj_per_bit: f64,
    /// Minimum detectable optical power in milli-watts.
    pub sensitivity_mw: f64,
    /// Whether the detector is currently powered (gated on).
    gated_on: bool,
    /// Cycles spent powered on, for idle-energy accounting.
    powered_cycles: u64,
}

impl PhotoDetector {
    /// The detector assumed by the paper's evaluation.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ring: MicroRingResonator::paper_area_ring(),
            data_rate_gbps: 12.5,
            responsivity_a_per_w: 1.08,
            energy_fj_per_bit: 40.0,
            sensitivity_mw: 0.01,
            gated_on: false,
            powered_cycles: 0,
        }
    }

    /// Demodulation energy in pico-joules per bit.
    #[must_use]
    pub fn energy_pj_per_bit(&self) -> f64 {
        fj_to_pj(self.energy_fj_per_bit)
    }

    /// Photo-current produced by an incident optical power, in milli-amperes.
    #[must_use]
    pub fn photocurrent_ma(&self, optical_power_mw: f64) -> f64 {
        self.responsivity_a_per_w * optical_power_mw
    }

    /// Whether an incident power is strong enough to be detected as a `1`.
    #[must_use]
    pub fn detects(&self, optical_power_mw: f64) -> bool {
        optical_power_mw >= self.sensitivity_mw
    }

    /// Powers the detector on (done when a reservation flit names this
    /// detector's wavelength, Section 3.3.1).
    pub fn gate(&mut self) {
        self.gated_on = true;
    }

    /// Powers the detector off (done when the packet has been received).
    pub fn ungate(&mut self) {
        self.gated_on = false;
    }

    /// True while the detector is powered.
    #[must_use]
    pub fn is_gated_on(&self) -> bool {
        self.gated_on
    }

    /// Advances one clock cycle, accumulating powered time.
    pub fn tick(&mut self) {
        if self.gated_on {
            self.powered_cycles += 1;
        }
    }

    /// Cycles the detector has spent powered on.
    #[must_use]
    pub fn powered_cycles(&self) -> u64 {
        self.powered_cycles
    }
}

impl Default for PhotoDetector {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responsivity_produces_expected_current() {
        let d = PhotoDetector::paper_default();
        assert!((d.photocurrent_ma(1.0) - 1.08).abs() < 1e-12);
        assert!((d.photocurrent_ma(0.5) - 0.54).abs() < 1e-12);
    }

    #[test]
    fn detection_threshold() {
        let d = PhotoDetector::paper_default();
        assert!(d.detects(0.02));
        assert!(d.detects(0.01));
        assert!(!d.detects(0.001));
    }

    #[test]
    fn gating_tracks_powered_cycles() {
        let mut d = PhotoDetector::paper_default();
        for _ in 0..5 {
            d.tick();
        }
        assert_eq!(d.powered_cycles(), 0, "ungated detector consumes no time");
        d.gate();
        assert!(d.is_gated_on());
        for _ in 0..7 {
            d.tick();
        }
        d.ungate();
        for _ in 0..3 {
            d.tick();
        }
        assert_eq!(d.powered_cycles(), 7);
    }

    #[test]
    fn demodulation_energy_matches_table() {
        let d = PhotoDetector::paper_default();
        assert!((d.energy_pj_per_bit() - 0.04).abs() < 1e-12);
    }
}
