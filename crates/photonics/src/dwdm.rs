//! Dense Wavelength Division Multiplexing (DWDM) wavelength bookkeeping.
//!
//! A data waveguide carries up to `λ_W` wavelengths (64 in the paper, as in
//! Firefly [20]); the whole photonic fabric spreads its `N_λ` data
//! wavelengths over `⌈N_λ / λ_W⌉` waveguides. The d-HetPNoC DBA protocol
//! identifies an allocated wavelength with a *(waveguide number, wavelength
//! number)* pair; the reservation flit carries `log2(λ_W)`-bit wavelength
//! numbers plus, when several data waveguides exist, `log2(N_W)`-bit
//! waveguide numbers (Section 3.4.1.1).

use serde::{Deserialize, Serialize};

/// Maximum number of DWDM wavelengths per waveguide used throughout the paper.
pub const PAPER_WAVELENGTHS_PER_WAVEGUIDE: usize = 64;

/// Identifier of one DWDM wavelength within the data-waveguide bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WavelengthId {
    /// Which data waveguide the wavelength lives in.
    pub waveguide: usize,
    /// Index of the wavelength within its waveguide (`0..wavelengths_per_waveguide`).
    pub index: usize,
}

impl WavelengthId {
    /// Creates a wavelength identifier.
    #[must_use]
    pub fn new(waveguide: usize, index: usize) -> Self {
        Self { waveguide, index }
    }
}

/// A grid of `num_waveguides × wavelengths_per_waveguide` DWDM wavelengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WavelengthGrid {
    num_waveguides: usize,
    wavelengths_per_waveguide: usize,
}

impl WavelengthGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(num_waveguides: usize, wavelengths_per_waveguide: usize) -> Self {
        assert!(num_waveguides > 0, "need at least one waveguide");
        assert!(
            wavelengths_per_waveguide > 0,
            "need at least one wavelength per waveguide"
        );
        Self {
            num_waveguides,
            wavelengths_per_waveguide,
        }
    }

    /// Builds the smallest grid able to carry `total_wavelengths` data
    /// wavelengths with at most `per_waveguide` wavelengths per waveguide
    /// (the `N_WD = ⌈N_λ / λ_W⌉` relation of Section 3.4.3).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn for_total(total_wavelengths: usize, per_waveguide: usize) -> Self {
        assert!(total_wavelengths > 0 && per_waveguide > 0);
        let waveguides = total_wavelengths.div_ceil(per_waveguide);
        Self::new(waveguides, per_waveguide)
    }

    /// Number of waveguides.
    #[must_use]
    pub fn num_waveguides(&self) -> usize {
        self.num_waveguides
    }

    /// Wavelengths per waveguide.
    #[must_use]
    pub fn wavelengths_per_waveguide(&self) -> usize {
        self.wavelengths_per_waveguide
    }

    /// Total wavelength capacity of the grid.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_waveguides * self.wavelengths_per_waveguide
    }

    /// Flattens a wavelength id into `0..capacity()`.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the grid.
    #[must_use]
    pub fn flatten(&self, id: WavelengthId) -> usize {
        assert!(id.waveguide < self.num_waveguides, "waveguide out of range");
        assert!(
            id.index < self.wavelengths_per_waveguide,
            "wavelength index out of range"
        );
        id.waveguide * self.wavelengths_per_waveguide + id.index
    }

    /// Inverse of [`WavelengthGrid::flatten`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` is outside the grid.
    #[must_use]
    pub fn unflatten(&self, flat: usize) -> WavelengthId {
        assert!(flat < self.capacity(), "flat index out of range");
        WavelengthId {
            waveguide: flat / self.wavelengths_per_waveguide,
            index: flat % self.wavelengths_per_waveguide,
        }
    }

    /// Iterates over every wavelength id in the grid in flat order.
    pub fn iter(&self) -> impl Iterator<Item = WavelengthId> + '_ {
        (0..self.capacity()).map(move |f| self.unflatten(f))
    }

    /// Number of bits needed to encode the wavelength index within a
    /// waveguide (6 bits for 64 wavelengths, per Section 3.4.1.1).
    #[must_use]
    pub fn wavelength_index_bits(&self) -> u32 {
        bits_for(self.wavelengths_per_waveguide)
    }

    /// Number of bits needed to encode the waveguide number; zero when a
    /// single waveguide suffices (the "best case" of Section 3.4.1.1).
    #[must_use]
    pub fn waveguide_number_bits(&self) -> u32 {
        if self.num_waveguides <= 1 {
            0
        } else {
            bits_for(self.num_waveguides)
        }
    }

    /// Number of bits of one wavelength identifier in the reservation flit.
    #[must_use]
    pub fn identifier_bits(&self) -> u32 {
        self.wavelength_index_bits() + self.waveguide_number_bits()
    }
}

/// Number of bits needed to represent values `0..n` (`⌈log2 n⌉`, minimum 1).
#[must_use]
pub fn bits_for(n: usize) -> u32 {
    assert!(n > 0, "cannot encode an empty range");
    if n == 1 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_for_paper_bandwidth_sets() {
        // BW set 1: 64 wavelengths -> 1 waveguide.
        let g1 = WavelengthGrid::for_total(64, PAPER_WAVELENGTHS_PER_WAVEGUIDE);
        assert_eq!(g1.num_waveguides(), 1);
        assert_eq!(g1.capacity(), 64);
        // BW set 2: 256 wavelengths -> 4 waveguides.
        let g2 = WavelengthGrid::for_total(256, 64);
        assert_eq!(g2.num_waveguides(), 4);
        // BW set 3: 512 wavelengths -> 8 waveguides.
        let g3 = WavelengthGrid::for_total(512, 64);
        assert_eq!(g3.num_waveguides(), 8);
    }

    #[test]
    fn identifier_bit_widths_match_section_3_4_1_1() {
        // One waveguide: 6-bit wavelength number, no waveguide number.
        let g1 = WavelengthGrid::for_total(64, 64);
        assert_eq!(g1.wavelength_index_bits(), 6);
        assert_eq!(g1.waveguide_number_bits(), 0);
        assert_eq!(g1.identifier_bits(), 6);
        // Eight waveguides (BW set 3): 6 + 3 bits.
        let g3 = WavelengthGrid::for_total(512, 64);
        assert_eq!(g3.waveguide_number_bits(), 3);
        assert_eq!(g3.identifier_bits(), 9);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let g = WavelengthGrid::new(3, 5);
        for flat in 0..g.capacity() {
            let id = g.unflatten(flat);
            assert_eq!(g.flatten(id), flat);
        }
        assert_eq!(g.iter().count(), 15);
    }

    #[test]
    fn rounding_up_of_waveguides() {
        let g = WavelengthGrid::for_total(65, 64);
        assert_eq!(g.num_waveguides(), 2);
    }

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(65), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flatten_rejects_out_of_range() {
        let g = WavelengthGrid::new(1, 4);
        let _ = g.flatten(WavelengthId::new(1, 0));
    }
}
