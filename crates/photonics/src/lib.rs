//! # pnoc-photonics — photonic device and cost models
//!
//! This crate models the photonic substrate that both the Firefly baseline
//! and the d-HetPNoC architecture are built on (Chapter 2 of the thesis):
//!
//! * [`mrr`] — silicon micro-ring resonators (the building block of
//!   modulators, filters and switches),
//! * [`modulator`] / [`detector`] — electro-optic modulators and germanium
//!   photo-detectors,
//! * [`laser`] — multi-wavelength laser sources,
//! * [`waveguide`] — on-chip silicon waveguides with DWDM,
//! * [`pse`] — photonic switching elements (MRR-based 90° turns),
//! * [`dwdm`] — wavelength identifiers and wavelength grids,
//! * [`thermal`] — thermal tuning of ring resonances,
//! * [`loss`] — optical power / insertion-loss budgets,
//! * [`energy`] — the packet-energy model of Section 3.4.1.2
//!   (Tables 3-4 and 3-5),
//! * [`area`] — the modulator/detector area model of Section 3.4.3
//!   (equations 5–24).
//!
//! The energy and area models are the parts consumed directly by the
//! evaluation; the device models document where each constant comes from and
//! provide physically-grounded defaults for exploring other design points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod detector;
pub mod dwdm;
pub mod energy;
pub mod laser;
pub mod loss;
pub mod modulator;
pub mod mrr;
pub mod pse;
pub mod thermal;
pub mod units;
pub mod waveguide;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::area::{AreaModel, AreaReport, RingCounts};
    pub use crate::detector::PhotoDetector;
    pub use crate::dwdm::{WavelengthGrid, WavelengthId};
    pub use crate::energy::{EnergyAccumulator, EnergyBreakdown, PhotonicEnergyModel};
    pub use crate::laser::LaserSource;
    pub use crate::loss::LossBudget;
    pub use crate::modulator::Modulator;
    pub use crate::mrr::MicroRingResonator;
    pub use crate::pse::PhotonicSwitchingElement;
    pub use crate::thermal::ThermalTuner;
    pub use crate::units::*;
    pub use crate::waveguide::Waveguide;
}

pub use prelude::*;
