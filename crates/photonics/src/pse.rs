//! Photonic switching elements (PSEs).
//!
//! Some photonic NoCs (e.g. the 2-D folded torus of Shacham et al. [15])
//! steer light through 90° turns with MRR-based photonic switching elements
//! (thesis Section 2.1.3). The crossbar-based architectures studied in the
//! thesis do not need PSEs on the data path, but the element is part of the
//! photonic substrate and is modelled here for completeness and for the loss
//! analysis that justifies the crossbar design choice (each PSE hop adds loss
//! and crosstalk, which is why the thesis prefers a blocking, compact switch).

use crate::mrr::MicroRingResonator;
use serde::{Deserialize, Serialize};

/// State of a photonic switching element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PseState {
    /// Ring off-resonance: light passes straight through.
    Off,
    /// Ring on-resonance: the matching wavelength is turned by 90°.
    On,
}

/// Direction taken by light through a PSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PsePath {
    /// Straight through (ring off or wavelength mismatch).
    Through,
    /// Turned by 90° (ring on and wavelength matches).
    Turned,
}

/// An MRR-based photonic switching element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotonicSwitchingElement {
    /// The ring implementing the switch.
    pub ring: MicroRingResonator,
    /// Current switching state.
    pub state: PseState,
    /// Insertion loss of the through path, dB.
    pub through_loss_db: f64,
    /// Insertion loss of the turned (drop) path, dB.
    pub turn_loss_db: f64,
    /// Crosstalk leaked into the unintended port, dB (negative number means
    /// the leaked power is that many dB below the signal).
    pub crosstalk_db: f64,
    /// Energy to change state once, in pico-joules.
    pub switching_energy_pj: f64,
}

impl PhotonicSwitchingElement {
    /// A PSE with representative published parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ring: MicroRingResonator::paper_area_ring(),
            state: PseState::Off,
            through_loss_db: 0.05,
            turn_loss_db: 0.5,
            crosstalk_db: -20.0,
            switching_energy_pj: 0.4,
        }
    }

    /// Sets the switching state, returning the energy spent (zero when the
    /// state does not change).
    pub fn set_state(&mut self, state: PseState) -> f64 {
        if self.state == state {
            0.0
        } else {
            self.state = state;
            self.switching_energy_pj
        }
    }

    /// Path taken by light whose wavelength matches the ring resonance.
    #[must_use]
    pub fn route_resonant(&self) -> PsePath {
        match self.state {
            PseState::Off => PsePath::Through,
            PseState::On => PsePath::Turned,
        }
    }

    /// Path taken by light whose wavelength does not match the resonance:
    /// always straight through, regardless of switch state.
    #[must_use]
    pub fn route_off_resonant(&self) -> PsePath {
        PsePath::Through
    }

    /// Insertion loss experienced along `path`, in dB.
    #[must_use]
    pub fn loss_db(&self, path: PsePath) -> f64 {
        match path {
            PsePath::Through => self.through_loss_db,
            PsePath::Turned => self.turn_loss_db,
        }
    }

    /// Total insertion loss of a route crossing `hops` PSEs that all turn the
    /// light. This grows linearly, which is the argument (Section 2.1.3)
    /// against deep PSE-based non-blocking switches.
    #[must_use]
    pub fn cascaded_turn_loss_db(&self, hops: usize) -> f64 {
        self.turn_loss_db * hops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_state_passes_light_through() {
        let pse = PhotonicSwitchingElement::paper_default();
        assert_eq!(pse.route_resonant(), PsePath::Through);
        assert_eq!(pse.route_off_resonant(), PsePath::Through);
    }

    #[test]
    fn on_state_turns_only_resonant_light() {
        let mut pse = PhotonicSwitchingElement::paper_default();
        let e = pse.set_state(PseState::On);
        assert!(e > 0.0);
        assert_eq!(pse.route_resonant(), PsePath::Turned);
        assert_eq!(pse.route_off_resonant(), PsePath::Through);
    }

    #[test]
    fn redundant_state_change_costs_nothing() {
        let mut pse = PhotonicSwitchingElement::paper_default();
        assert_eq!(pse.set_state(PseState::Off), 0.0);
        assert!(pse.set_state(PseState::On) > 0.0);
        assert_eq!(pse.set_state(PseState::On), 0.0);
    }

    #[test]
    fn turn_loss_exceeds_through_loss_and_cascades() {
        let pse = PhotonicSwitchingElement::paper_default();
        assert!(pse.loss_db(PsePath::Turned) > pse.loss_db(PsePath::Through));
        assert!((pse.cascaded_turn_loss_db(4) - 2.0).abs() < 1e-9);
    }
}
