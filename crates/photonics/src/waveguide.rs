//! On-chip silicon waveguides.
//!
//! Waveguides carry the DWDM optical signals between photonic routers
//! (thesis Section 2.1.5). They are fabricated in silicon-on-insulator with
//! deep-UV lithography [17]; light is confined by total internal reflection
//! between the high-index core and the cladding. The models here track the
//! propagation loss and wavelength capacity used by the loss budget and the
//! waveguide-count arithmetic of the area model.

use crate::dwdm::PAPER_WAVELENGTHS_PER_WAVEGUIDE;
use serde::{Deserialize, Serialize};

/// Role a waveguide plays in the photonic fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaveguideRole {
    /// Carries data packets between photonic routers.
    Data,
    /// Carries reservation broadcasts (R-SWMR control).
    Reservation,
    /// Carries the DBA token of d-HetPNoC.
    Control,
}

/// An on-chip optical waveguide.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    /// What the waveguide is used for.
    pub role: WaveguideRole,
    /// Physical length in milli-metres. For a 20 mm × 20 mm die, a serpentine
    /// crossbar waveguide visiting all 16 clusters is a few centimetres long.
    pub length_mm: f64,
    /// Propagation loss in dB per centimetre (≈ 1.5 dB/cm for SOI strip
    /// waveguides fabricated with DUV lithography [17]).
    pub propagation_loss_db_per_cm: f64,
    /// Maximum number of DWDM wavelengths the waveguide carries.
    pub max_wavelengths: usize,
}

impl Waveguide {
    /// A data waveguide with the paper's parameters (64 DWDM wavelengths,
    /// ~40 mm serpentine across the 20 mm × 20 mm die).
    #[must_use]
    pub fn paper_data() -> Self {
        Self {
            role: WaveguideRole::Data,
            length_mm: 40.0,
            propagation_loss_db_per_cm: 1.5,
            max_wavelengths: PAPER_WAVELENGTHS_PER_WAVEGUIDE,
        }
    }

    /// A reservation-broadcast waveguide.
    #[must_use]
    pub fn paper_reservation() -> Self {
        Self {
            role: WaveguideRole::Reservation,
            ..Self::paper_data()
        }
    }

    /// The d-HetPNoC token (control) waveguide, which uses maximum DWDM
    /// (Section 3.2.1: "circulated between the photonic routers using a
    /// separate control waveguide with maximum DWDM").
    #[must_use]
    pub fn paper_control() -> Self {
        Self {
            role: WaveguideRole::Control,
            ..Self::paper_data()
        }
    }

    /// Propagation loss over the full waveguide length, in dB.
    #[must_use]
    pub fn propagation_loss_db(&self) -> f64 {
        self.propagation_loss_db_per_cm * self.length_mm / 10.0
    }

    /// Propagation loss over a partial traversal, in dB.
    ///
    /// # Panics
    ///
    /// Panics if `distance_mm` is negative or exceeds the waveguide length.
    #[must_use]
    pub fn partial_loss_db(&self, distance_mm: f64) -> f64 {
        assert!(
            (0.0..=self.length_mm).contains(&distance_mm),
            "distance outside waveguide"
        );
        self.propagation_loss_db_per_cm * distance_mm / 10.0
    }

    /// Aggregate bandwidth in Gb/s given a per-wavelength line rate.
    #[must_use]
    pub fn aggregate_bandwidth_gbps(&self, line_rate_gbps: f64) -> f64 {
        self.max_wavelengths as f64 * line_rate_gbps
    }

    /// Time for light to traverse the waveguide, in pico-seconds
    /// (group velocity ≈ c / n_g).
    #[must_use]
    pub fn traversal_time_ps(&self) -> f64 {
        use crate::units::{SILICON_GROUP_INDEX, SPEED_OF_LIGHT_M_PER_S};
        let length_m = self.length_mm * 1e-3;
        length_m * SILICON_GROUP_INDEX / SPEED_OF_LIGHT_M_PER_S * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_loss_scales_with_length() {
        let wg = Waveguide::paper_data();
        // 40 mm = 4 cm at 1.5 dB/cm = 6 dB.
        assert!((wg.propagation_loss_db() - 6.0).abs() < 1e-9);
        assert!((wg.partial_loss_db(20.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_bandwidth_matches_paper() {
        let wg = Waveguide::paper_data();
        // 64 wavelengths at 12.5 Gb/s = 800 Gb/s, the figure the paper uses
        // for reservation-flit timing (Section 3.4.1.1).
        assert!((wg.aggregate_bandwidth_gbps(12.5) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn light_crosses_the_die_well_within_a_clock_cycle() {
        let wg = Waveguide::paper_data();
        // 40 mm of silicon waveguide ≈ 460 ps — about one 400 ps clock cycle,
        // which is why the paper charges a single cycle for photonic
        // traversal.
        let t = wg.traversal_time_ps();
        assert!(t > 300.0 && t < 600.0, "traversal {t} ps");
    }

    #[test]
    fn roles_are_preserved() {
        assert_eq!(Waveguide::paper_control().role, WaveguideRole::Control);
        assert_eq!(
            Waveguide::paper_reservation().role,
            WaveguideRole::Reservation
        );
    }

    #[test]
    #[should_panic(expected = "outside waveguide")]
    fn partial_loss_rejects_out_of_range() {
        let _ = Waveguide::paper_data().partial_loss_db(100.0);
    }
}
