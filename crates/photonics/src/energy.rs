//! Packet-energy model (Section 3.4.1.2, Tables 3-4 and 3-5).
//!
//! The energy of transferring a packet over the PNoC is
//!
//! ```text
//! E_packet   = E_electrical + E_photonic                         (eq. 3)
//! E_photonic = E_launch + E_modulation + E_tuning + E_buffer     (eq. 4)
//! ```
//!
//! with the per-bit coefficients of Table 3-5:
//!
//! | component    | pJ/bit     |
//! |--------------|------------|
//! | E_modulation | 0.04       |
//! | E_tuning     | 0.24       |
//! | E_launch     | 0.15       |
//! | E_buffer     | 0.0781250  |
//! | E_router     | 0.625      |
//!
//! The buffer component is charged per bit per cycle of residence in a
//! photonic-router buffer, which is what makes congestion visible in the
//! packet energy (the thesis explains the d-HetPNoC energy advantage by
//! "flits occupy the buffers in routers for a shorter duration"). The router
//! component is charged per bit per electrical-router traversal.

use serde::{Deserialize, Serialize};

/// Per-bit energy coefficients of the photonic NoC (Table 3-5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotonicEnergyModel {
    /// Modulation / demodulation energy, pJ per bit.
    pub modulation_pj_per_bit: f64,
    /// Thermal-tuning energy, pJ per bit.
    pub tuning_pj_per_bit: f64,
    /// Laser launch energy, pJ per bit.
    pub launch_pj_per_bit: f64,
    /// Buffering energy, pJ per bit written into a buffer.
    pub buffer_pj_per_bit: f64,
    /// Buffer retention (leakage) energy, pJ per bit per cycle of residence.
    /// Calibrated so that holding a flit for one full buffer depth (64
    /// cycles) costs one additional buffer-write energy; this is the term
    /// that makes congestion visible in the packet energy ("flits occupy the
    /// buffers in routers for a shorter duration", Section 3.4.1.2) without
    /// letting it dwarf the link energy.
    pub buffer_leakage_pj_per_bit_cycle: f64,
    /// Electrical router traversal energy, pJ per bit per hop.
    pub router_pj_per_bit: f64,
    /// Electrical link traversal energy, pJ per bit per hop (folded into the
    /// router figure by the thesis; kept separate so ablations can vary it).
    pub link_pj_per_bit: f64,
}

impl PhotonicEnergyModel {
    /// The coefficients of Table 3-5.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            modulation_pj_per_bit: 0.04,
            tuning_pj_per_bit: 0.24,
            launch_pj_per_bit: 0.15,
            buffer_pj_per_bit: 0.078_125,
            buffer_leakage_pj_per_bit_cycle: 0.078_125 / 64.0,
            router_pj_per_bit: 0.625,
            link_pj_per_bit: 0.0,
        }
    }

    /// Photonic per-bit energy excluding buffering:
    /// launch + modulation + tuning (0.43 pJ/bit with the paper's numbers).
    #[must_use]
    pub fn photonic_link_pj_per_bit(&self) -> f64 {
        self.launch_pj_per_bit + self.modulation_pj_per_bit + self.tuning_pj_per_bit
    }

    /// Energy to move `bits` bits over one photonic channel (launch,
    /// modulation, tuning), in pico-joules.
    #[must_use]
    pub fn photonic_transfer_pj(&self, bits: u64) -> f64 {
        self.photonic_link_pj_per_bit() * bits as f64
    }

    /// Energy of writing `bits` bits into a buffer, pJ.
    #[must_use]
    pub fn buffering_pj(&self, bits: u64) -> f64 {
        self.buffer_pj_per_bit * bits as f64
    }

    /// Energy of holding `bits` bits buffered for one cycle, pJ.
    #[must_use]
    pub fn buffer_retention_pj(&self, bits: u64) -> f64 {
        self.buffer_leakage_pj_per_bit_cycle * bits as f64
    }

    /// Energy of pushing `bits` bits through one electrical router, pJ.
    #[must_use]
    pub fn router_traversal_pj(&self, bits: u64) -> f64 {
        (self.router_pj_per_bit + self.link_pj_per_bit) * bits as f64
    }
}

impl Default for PhotonicEnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Energy totals accumulated during a simulation, split by component
/// (the terms of equations 3 and 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Laser launch energy, pJ.
    pub launch_pj: f64,
    /// Modulation / demodulation energy, pJ.
    pub modulation_pj: f64,
    /// Thermal tuning energy, pJ.
    pub tuning_pj: f64,
    /// Buffering energy, pJ.
    pub buffer_pj: f64,
    /// Electrical router + link energy, pJ.
    pub electrical_pj: f64,
}

impl EnergyBreakdown {
    /// Total photonic energy (eq. 4), pJ.
    #[must_use]
    pub fn photonic_pj(&self) -> f64 {
        self.launch_pj + self.modulation_pj + self.tuning_pj + self.buffer_pj
    }

    /// Total packet energy (eq. 3), pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.photonic_pj() + self.electrical_pj
    }

    /// Element-wise sum of two breakdowns.
    #[must_use]
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            launch_pj: self.launch_pj + other.launch_pj,
            modulation_pj: self.modulation_pj + other.modulation_pj,
            tuning_pj: self.tuning_pj + other.tuning_pj,
            buffer_pj: self.buffer_pj + other.buffer_pj,
            electrical_pj: self.electrical_pj + other.electrical_pj,
        }
    }
}

/// Streaming accumulator of simulation energy, driven by the cycle-accurate
/// engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyAccumulator {
    model: PhotonicEnergyModel,
    breakdown: EnergyBreakdown,
}

impl EnergyAccumulator {
    /// Creates an accumulator using the given coefficients.
    #[must_use]
    pub fn new(model: PhotonicEnergyModel) -> Self {
        Self {
            model,
            breakdown: EnergyBreakdown::default(),
        }
    }

    /// The coefficient set in use.
    #[must_use]
    pub fn model(&self) -> &PhotonicEnergyModel {
        &self.model
    }

    /// Records `bits` bits crossing a photonic channel (launch + modulation +
    /// tuning are charged).
    pub fn record_photonic_transfer(&mut self, bits: u64) {
        let b = bits as f64;
        self.breakdown.launch_pj += self.model.launch_pj_per_bit * b;
        self.breakdown.modulation_pj += self.model.modulation_pj_per_bit * b;
        self.breakdown.tuning_pj += self.model.tuning_pj_per_bit * b;
    }

    /// Records `bits` bits being written into a router buffer.
    pub fn record_buffer_write(&mut self, bits: u64) {
        self.breakdown.buffer_pj += self.model.buffering_pj(bits);
    }

    /// Records `bits` bits sitting in router buffers for one cycle
    /// (retention energy).
    pub fn record_buffer_occupancy(&mut self, bits: u64) {
        self.breakdown.buffer_pj += self.model.buffer_retention_pj(bits);
    }

    /// Records `bits` bits traversing an electrical router.
    pub fn record_router_traversal(&mut self, bits: u64) {
        self.breakdown.electrical_pj += self.model.router_traversal_pj(bits);
    }

    /// Current totals.
    #[must_use]
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Resets the totals (used at the end of the warm-up phase).
    pub fn reset(&mut self) {
        self.breakdown = EnergyBreakdown::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients_sum_to_0_43_pj_per_bit() {
        let m = PhotonicEnergyModel::paper_default();
        assert!((m.photonic_link_pj_per_bit() - 0.43).abs() < 1e-12);
    }

    #[test]
    fn transfer_and_buffer_energies_scale_with_bits() {
        let m = PhotonicEnergyModel::paper_default();
        assert!((m.photonic_transfer_pj(100) - 43.0).abs() < 1e-9);
        assert!((m.buffering_pj(64) - 5.0).abs() < 1e-9);
        assert!((m.buffer_retention_pj(64 * 64) - 5.0).abs() < 1e-9);
        assert!((m.router_traversal_pj(32) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_splits_components_correctly() {
        let mut acc = EnergyAccumulator::new(PhotonicEnergyModel::paper_default());
        acc.record_photonic_transfer(1000);
        acc.record_buffer_write(1000);
        acc.record_router_traversal(1000);
        let b = acc.breakdown();
        assert!((b.launch_pj - 150.0).abs() < 1e-9);
        assert!((b.modulation_pj - 40.0).abs() < 1e-9);
        assert!((b.tuning_pj - 240.0).abs() < 1e-9);
        assert!((b.buffer_pj - 78.125).abs() < 1e-9);
        assert!((b.electrical_pj - 625.0).abs() < 1e-9);
        assert!((b.photonic_pj() - 508.125).abs() < 1e-9);
        assert!((b.total_pj() - 1133.125).abs() < 1e-9);
        // Retention: holding 1000 bits for 64 cycles costs one write-equivalent.
        let mut acc2 = EnergyAccumulator::new(PhotonicEnergyModel::paper_default());
        for _ in 0..64 {
            acc2.record_buffer_occupancy(1000);
        }
        assert!((acc2.breakdown().buffer_pj - 78.125).abs() < 1e-6);
    }

    #[test]
    fn breakdown_combination_is_elementwise() {
        let a = EnergyBreakdown {
            launch_pj: 1.0,
            modulation_pj: 2.0,
            tuning_pj: 3.0,
            buffer_pj: 4.0,
            electrical_pj: 5.0,
        };
        let b = a.combined(&a);
        assert_eq!(b.launch_pj, 2.0);
        assert_eq!(b.electrical_pj, 10.0);
        assert_eq!(b.total_pj(), 2.0 * a.total_pj());
    }

    #[test]
    fn reset_clears_totals() {
        let mut acc = EnergyAccumulator::new(PhotonicEnergyModel::paper_default());
        acc.record_photonic_transfer(10);
        acc.reset();
        assert_eq!(acc.breakdown().total_pj(), 0.0);
    }
}
