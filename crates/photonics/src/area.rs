//! Electro-optic device area model (Section 3.4.3, equations 5–24).
//!
//! The dynamic bandwidth allocation of d-HetPNoC requires every photonic
//! router to be able to modulate (and detect) *any* wavelength in *any* data
//! waveguide, which costs extra ring devices compared to the Firefly
//! baseline, where each router only writes its own statically-assigned
//! wavelengths. This module implements the ring-count equations of the
//! thesis verbatim and converts them to area with the `π·(5 µm)²` per-ring
//! footprint (equations 23–24).
//!
//! With the paper's 64-core / 16-cluster configuration and 64 data
//! wavelengths, the model reproduces the numbers quoted in the text:
//! 1.608 mm² for d-HetPNoC and 1.367 mm² for Firefly.

use crate::mrr::MicroRingResonator;
use serde::{Deserialize, Serialize};

/// Number of wavelengths the control waveguide carries (the thesis fixes the
/// token/control waveguide at maximum DWDM, i.e. 64 wavelengths — equation 17
/// uses the literal constant 64).
pub const CONTROL_WAVEGUIDE_WAVELENGTHS: usize = 64;

/// Counts of electro-optic ring devices (modulators and detectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingCounts {
    /// Modulators on data waveguides.
    pub data_modulators: usize,
    /// Modulators on reservation waveguides.
    pub reservation_modulators: usize,
    /// Modulators on the control (token) waveguide; zero for Firefly.
    pub control_modulators: usize,
    /// Detectors on data waveguides.
    pub data_detectors: usize,
    /// Detectors on reservation waveguides.
    pub reservation_detectors: usize,
    /// Detectors on the control (token) waveguide; zero for Firefly.
    pub control_detectors: usize,
}

impl RingCounts {
    /// Total modulators (`T_MD` / `T_MF` in the thesis).
    #[must_use]
    pub fn total_modulators(&self) -> usize {
        self.data_modulators + self.reservation_modulators + self.control_modulators
    }

    /// Total detectors (`T_DMD` / `T_DMF` in the thesis).
    #[must_use]
    pub fn total_detectors(&self) -> usize {
        self.data_detectors + self.reservation_detectors + self.control_detectors
    }

    /// Total ring devices.
    #[must_use]
    pub fn total_rings(&self) -> usize {
        self.total_modulators() + self.total_detectors()
    }
}

/// Area report for one architecture at one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// The ring counts behind the area figure.
    pub rings: RingCounts,
    /// Number of data waveguides.
    pub data_waveguides: usize,
    /// Total electro-optic device area in mm².
    pub area_mm2: f64,
}

/// The area model of Section 3.4.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Number of photonic routers, `N_PR` (16 for the 64-core chip).
    pub num_photonic_routers: usize,
    /// Maximum DWDM wavelengths per waveguide, `λ_W` (64).
    pub wavelengths_per_waveguide: usize,
    /// The ring geometry used for the per-device footprint (5 µm radius).
    pub ring: MicroRingResonator,
}

impl AreaModel {
    /// The paper's configuration: 16 photonic routers, 64 wavelengths per
    /// waveguide, 5 µm rings.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            num_photonic_routers: 16,
            wavelengths_per_waveguide: 64,
            ring: MicroRingResonator::paper_area_ring(),
        }
    }

    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(num_photonic_routers: usize, wavelengths_per_waveguide: usize) -> Self {
        assert!(num_photonic_routers > 0);
        assert!(wavelengths_per_waveguide > 0);
        Self {
            num_photonic_routers,
            wavelengths_per_waveguide,
            ring: MicroRingResonator::paper_area_ring(),
        }
    }

    /// Number of data waveguides needed for `total_data_wavelengths`
    /// (`N_WD = ⌈N_λ / λ_W⌉`).
    #[must_use]
    pub fn data_waveguides_dynamic(&self, total_data_wavelengths: usize) -> usize {
        total_data_wavelengths.div_ceil(self.wavelengths_per_waveguide)
    }

    /// Ring counts for the d-HetPNoC (dynamic) architecture, equations 5–9
    /// and 14–18.
    #[must_use]
    pub fn dynamic_ring_counts(&self, total_data_wavelengths: usize) -> RingCounts {
        let n_pr = self.num_photonic_routers;
        let lambda_w = self.wavelengths_per_waveguide;
        let n_wd = self.data_waveguides_dynamic(total_data_wavelengths);
        RingCounts {
            // eq. 6: every router can modulate any wavelength in any waveguide.
            data_modulators: n_pr * lambda_w * n_wd,
            // eq. 7: each router writes all channels of its reservation waveguide.
            reservation_modulators: n_pr * lambda_w,
            // eq. 8: each router can write all channels of the control waveguide.
            control_modulators: n_pr * lambda_w,
            // eq. 15: every router can detect any wavelength in any waveguide.
            data_detectors: n_pr * lambda_w * n_wd,
            // eq. 16: each router reads every reservation waveguide except its own.
            reservation_detectors: n_pr * lambda_w * (n_pr - 1),
            // eq. 17: each router receives all 64 channels of the control waveguide.
            control_detectors: n_pr * CONTROL_WAVEGUIDE_WAVELENGTHS,
        }
    }

    /// Wavelengths per data waveguide in the Firefly baseline
    /// (`N_Fλ = ⌈N_λ / N_WF⌉` with `N_WF = N_PR`).
    #[must_use]
    pub fn firefly_wavelengths_per_channel(&self, total_data_wavelengths: usize) -> usize {
        total_data_wavelengths.div_ceil(self.num_photonic_routers)
    }

    /// Ring counts for the Firefly baseline, equations 10–13 and 19–22.
    #[must_use]
    pub fn firefly_ring_counts(&self, total_data_wavelengths: usize) -> RingCounts {
        let n_pr = self.num_photonic_routers;
        let lambda_w = self.wavelengths_per_waveguide;
        let n_f = self.firefly_wavelengths_per_channel(total_data_wavelengths);
        RingCounts {
            // eq. 11: each router writes its own N_Fλ channels.
            data_modulators: n_pr * n_f,
            // eq. 12: each router writes all channels of its reservation waveguide.
            reservation_modulators: n_pr * lambda_w,
            control_modulators: 0,
            // eq. 20: each router reads the N_Fλ channels of every other router.
            data_detectors: n_pr * n_f * (n_pr - 1),
            // eq. 21: each router reads every reservation waveguide except its own.
            reservation_detectors: n_pr * lambda_w * (n_pr - 1),
            control_detectors: 0,
        }
    }

    /// Converts ring counts to area in mm² (equations 23–24: every modulator
    /// and detector occupies `π r²`).
    #[must_use]
    pub fn area_mm2(&self, rings: &RingCounts) -> f64 {
        rings.total_rings() as f64 * self.ring.footprint_mm2()
    }

    /// Full area report for d-HetPNoC at a given aggregate data bandwidth.
    #[must_use]
    pub fn dynamic_report(&self, total_data_wavelengths: usize) -> AreaReport {
        let rings = self.dynamic_ring_counts(total_data_wavelengths);
        AreaReport {
            rings,
            data_waveguides: self.data_waveguides_dynamic(total_data_wavelengths),
            area_mm2: self.area_mm2(&rings),
        }
    }

    /// Full area report for the Firefly baseline at a given aggregate data
    /// bandwidth.
    #[must_use]
    pub fn firefly_report(&self, total_data_wavelengths: usize) -> AreaReport {
        let rings = self.firefly_ring_counts(total_data_wavelengths);
        AreaReport {
            rings,
            data_waveguides: self.num_photonic_routers,
            area_mm2: self.area_mm2(&rings),
        }
    }

    /// Area of the data-path devices only (the sum of equations 9 and 18 the
    /// thesis quotes as the "total modulator/demodulator area ... for data
    /// waveguides"), mm².
    #[must_use]
    pub fn dynamic_data_path_area_mm2(&self, total_data_wavelengths: usize) -> f64 {
        let rings = self.dynamic_ring_counts(total_data_wavelengths);
        let data_rings = rings.total_rings();
        data_rings as f64 * self.ring.footprint_mm2()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ring_counts_at_64_wavelengths() {
        let m = AreaModel::paper_default();
        let dyn_rings = m.dynamic_ring_counts(64);
        // eq. 9: 16·64·1 + 2·16·64 = 3072 modulators.
        assert_eq!(dyn_rings.total_modulators(), 3072);
        // eq. 18: 16·64·1 + 16·64·15 + 16·64 = 17408 detectors.
        assert_eq!(dyn_rings.total_detectors(), 17_408);

        let ff_rings = m.firefly_ring_counts(64);
        // eq. 13: 16·4 + 16·64 = 1088 modulators.
        assert_eq!(ff_rings.total_modulators(), 1088);
        // eq. 22: 16·4·15 + 16·64·15 = 16320 detectors.
        assert_eq!(ff_rings.total_detectors(), 16_320);
    }

    #[test]
    fn paper_area_numbers_reproduced() {
        // The thesis quotes 1.608 mm² (d-HetPNoC) and 1.367 mm² (Firefly)
        // for the 64-data-wavelength configuration.
        let m = AreaModel::paper_default();
        let d = m.dynamic_report(64);
        let f = m.firefly_report(64);
        assert!(
            (d.area_mm2 - 1.608).abs() < 0.01,
            "d-HetPNoC {}",
            d.area_mm2
        );
        assert!((f.area_mm2 - 1.367).abs() < 0.01, "Firefly {}", f.area_mm2);
        assert!(d.area_mm2 > f.area_mm2);
    }

    #[test]
    fn dynamic_area_grows_faster_with_bandwidth() {
        let m = AreaModel::paper_default();
        let mut last_gap = 0.0;
        for wavelengths in [64, 128, 256, 512] {
            let d = m.dynamic_report(wavelengths).area_mm2;
            let f = m.firefly_report(wavelengths).area_mm2;
            let gap = d - f;
            assert!(d > f, "dynamic must cost more area at {wavelengths} λ");
            assert!(
                gap >= last_gap,
                "area gap must widen with total bandwidth (was {last_gap}, now {gap})"
            );
            last_gap = gap;
        }
    }

    #[test]
    fn area_growth_64_to_512_is_about_70_percent() {
        // Figure 3-8/3-9: total area grows by ≈ 70 % from 64 to 512
        // wavelengths for d-HetPNoC.
        let m = AreaModel::paper_default();
        let a64 = m.dynamic_report(64).area_mm2;
        let a512 = m.dynamic_report(512).area_mm2;
        let growth = (a512 - a64) / a64 * 100.0;
        assert!(
            (60.0..=420.0).contains(&growth),
            "growth {growth}% outside plausible range"
        );
    }

    #[test]
    fn waveguide_counts_follow_ceiling_division() {
        let m = AreaModel::paper_default();
        assert_eq!(m.data_waveguides_dynamic(64), 1);
        assert_eq!(m.data_waveguides_dynamic(65), 2);
        assert_eq!(m.data_waveguides_dynamic(256), 4);
        assert_eq!(m.data_waveguides_dynamic(512), 8);
        assert_eq!(m.firefly_wavelengths_per_channel(64), 4);
        assert_eq!(m.firefly_wavelengths_per_channel(256), 16);
        assert_eq!(m.firefly_wavelengths_per_channel(512), 32);
    }

    #[test]
    fn control_overhead_is_constant_in_bandwidth() {
        // Section 3.4.3: the control-waveguide overhead "remains constant and
        // is independent of the aggregate data bandwidth requirement".
        let m = AreaModel::paper_default();
        let c64 = m.dynamic_ring_counts(64);
        let c512 = m.dynamic_ring_counts(512);
        assert_eq!(c64.control_modulators, c512.control_modulators);
        assert_eq!(c64.control_detectors, c512.control_detectors);
    }
}
