//! Micro-ring resonators (MRRs).
//!
//! MRRs are the workhorse of the photonic NoC (thesis Section 2.1.1): they
//! act as wavelength-selective filters and, with carrier injection, as
//! modulators and switches. The thesis cites silicon *adiabatic* micro-rings
//! of 2 µm radius with a free spectral range (FSR) of 6.92 THz [13] and
//! assumes 5 µm-radius rings [28] for the area estimate of Section 3.4.3.

use crate::units::{um2_to_mm2, um_to_m, SILICON_GROUP_INDEX, SPEED_OF_LIGHT_M_PER_S};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A silicon micro-ring resonator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroRingResonator {
    /// Ring radius in micro-metres.
    pub radius_um: f64,
    /// Quality factor of the resonance.
    pub q_factor: f64,
    /// Group index of the ring waveguide (dimensionless).
    pub group_index: f64,
    /// Resonant wavelength in nano-metres.
    pub resonance_nm: f64,
}

impl MicroRingResonator {
    /// The 5 µm ring assumed by the paper's area model [28].
    #[must_use]
    pub fn paper_area_ring() -> Self {
        Self {
            radius_um: 5.0,
            q_factor: 10_000.0,
            group_index: SILICON_GROUP_INDEX,
            resonance_nm: 1550.0,
        }
    }

    /// The 2 µm adiabatic ring of Biberman et al. [13] with 6.92 THz FSR.
    #[must_use]
    pub fn adiabatic_2um() -> Self {
        Self {
            radius_um: 2.0,
            q_factor: 8_000.0,
            group_index: SILICON_GROUP_INDEX,
            resonance_nm: 1550.0,
        }
    }

    /// Creates a ring with an explicit radius, keeping the default silicon
    /// group index and a 1550 nm resonance.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive.
    #[must_use]
    pub fn with_radius_um(radius_um: f64) -> Self {
        assert!(radius_um > 0.0, "ring radius must be positive");
        Self {
            radius_um,
            ..Self::paper_area_ring()
        }
    }

    /// Ring circumference in micro-metres.
    #[must_use]
    pub fn circumference_um(&self) -> f64 {
        2.0 * PI * self.radius_um
    }

    /// Footprint of the ring, `π r²`, in square micro-metres. This is the
    /// per-ring area used in equations 23 and 24 of the thesis.
    #[must_use]
    pub fn footprint_um2(&self) -> f64 {
        PI * self.radius_um * self.radius_um
    }

    /// Footprint in square milli-metres.
    #[must_use]
    pub fn footprint_mm2(&self) -> f64 {
        um2_to_mm2(self.footprint_um2())
    }

    /// Free spectral range in hertz: `FSR = c / (n_g · L)` where `L` is the
    /// ring circumference. The FSR bounds how many DWDM channels the ring
    /// based WDM system can host (Section 2.1.1: FSR is inversely
    /// proportional to the circumference).
    #[must_use]
    pub fn free_spectral_range_hz(&self) -> f64 {
        let circumference_m = um_to_m(self.circumference_um());
        SPEED_OF_LIGHT_M_PER_S / (self.group_index * circumference_m)
    }

    /// Resonance full-width-at-half-maximum in hertz, `f / Q`.
    #[must_use]
    pub fn linewidth_hz(&self) -> f64 {
        let f = SPEED_OF_LIGHT_M_PER_S / (self.resonance_nm * 1e-9);
        f / self.q_factor
    }

    /// Maximum number of DWDM channels that fit in one FSR given a channel
    /// spacing in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `channel_spacing_hz` is not positive.
    #[must_use]
    pub fn max_channels(&self, channel_spacing_hz: f64) -> usize {
        assert!(channel_spacing_hz > 0.0, "channel spacing must be positive");
        (self.free_spectral_range_hz() / channel_spacing_hz).floor() as usize
    }

    /// Whether an optical carrier at `frequency_hz` is coupled by this ring
    /// (within half a linewidth of a resonance, modulo FSR).
    #[must_use]
    pub fn couples(&self, frequency_hz: f64) -> bool {
        let resonance_hz = SPEED_OF_LIGHT_M_PER_S / (self.resonance_nm * 1e-9);
        let fsr = self.free_spectral_range_hz();
        let delta = (frequency_hz - resonance_hz).rem_euclid(fsr);
        let dist = delta.min(fsr - delta);
        dist <= self.linewidth_hz() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn paper_ring_footprint() {
        let ring = MicroRingResonator::paper_area_ring();
        // π · 25 µm² ≈ 78.54 µm².
        assert!(close(ring.footprint_um2(), 78.5398, 1e-4));
        assert!(close(ring.footprint_mm2(), 78.5398e-6, 1e-4));
    }

    #[test]
    fn adiabatic_ring_fsr_matches_reference() {
        // Biberman et al. report 6.92 THz for the 2 µm adiabatic ring; the
        // group index constant was chosen to reproduce this within 1 %.
        let ring = MicroRingResonator::adiabatic_2um();
        let fsr_thz = ring.free_spectral_range_hz() / 1e12;
        assert!(close(fsr_thz, 6.92, 0.01), "FSR was {fsr_thz} THz");
    }

    #[test]
    fn fsr_inversely_proportional_to_circumference() {
        let small = MicroRingResonator::with_radius_um(2.0);
        let large = MicroRingResonator::with_radius_um(4.0);
        let ratio = small.free_spectral_range_hz() / large.free_spectral_range_hz();
        assert!(close(ratio, 2.0, 1e-9));
    }

    #[test]
    fn channel_capacity_supports_paper_dwdm() {
        // With a 2 µm ring (6.92 THz FSR) and 100 GHz channel spacing, more
        // than 64 channels fit — consistent with the paper's 64-wavelength
        // waveguides.
        let ring = MicroRingResonator::adiabatic_2um();
        assert!(ring.max_channels(100e9) >= 64);
    }

    #[test]
    fn coupling_is_resonance_selective() {
        let ring = MicroRingResonator::paper_area_ring();
        let resonance_hz = SPEED_OF_LIGHT_M_PER_S / (ring.resonance_nm * 1e-9);
        assert!(ring.couples(resonance_hz));
        // Halfway between two resonances nothing couples.
        assert!(!ring.couples(resonance_hz + ring.free_spectral_range_hz() / 2.0));
        // One full FSR away couples again.
        assert!(ring.couples(resonance_hz + ring.free_spectral_range_hz()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_rejected() {
        let _ = MicroRingResonator::with_radius_um(0.0);
    }
}
