//! Optical loss budget.
//!
//! A photonic link works only if the optical power arriving at the detector,
//! after every coupling, propagation, ring-pass and crossing loss, is still
//! above the detector sensitivity. This module provides a simple additive
//! (in dB) loss budget that the crossbar architectures use to check that a
//! wavelength launched at the source cluster is detectable at the farthest
//! cluster — the feasibility argument underlying the crossbar design choice
//! of Section 2.2 / Chapter 3.

use crate::units::{db_to_linear, linear_to_db};
use serde::{Deserialize, Serialize};

/// A named loss contribution, in dB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossItem {
    /// Human-readable source of the loss ("coupler", "propagation", ...).
    pub name: String,
    /// Loss in dB (positive number = power lost).
    pub loss_db: f64,
}

/// An additive optical loss budget along one source→destination light path.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LossBudget {
    items: Vec<LossItem>,
}

impl LossBudget {
    /// Creates an empty budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A representative budget for one hop of the paper's photonic crossbar:
    /// laser-to-waveguide coupling, the modulator insertion loss, propagation
    /// across the die, passing the off-resonance rings of the other clusters,
    /// the drop filter at the destination and the detector coupling.
    ///
    /// `pass_by_rings` is the number of off-resonance rings the light passes
    /// (proportional to the number of clusters sharing the waveguide).
    #[must_use]
    pub fn paper_crossbar_hop(pass_by_rings: usize) -> Self {
        let mut b = Self::new();
        b.add("laser coupling", 1.0);
        b.add("modulator insertion", 0.5);
        b.add("waveguide propagation (40 mm @ 1.5 dB/cm)", 6.0);
        b.add("ring pass-by", 0.01 * pass_by_rings as f64);
        b.add("drop filter", 0.5);
        b.add("detector coupling", 0.5);
        b
    }

    /// Adds a loss contribution.
    pub fn add(&mut self, name: impl Into<String>, loss_db: f64) {
        assert!(loss_db >= 0.0, "loss contributions must be non-negative");
        self.items.push(LossItem {
            name: name.into(),
            loss_db,
        });
    }

    /// Total loss in dB.
    #[must_use]
    pub fn total_db(&self) -> f64 {
        self.items.iter().map(|i| i.loss_db).sum()
    }

    /// The individual contributions.
    #[must_use]
    pub fn items(&self) -> &[LossItem] {
        &self.items
    }

    /// Power arriving at the detector, in milli-watts, for a given launch
    /// power.
    #[must_use]
    pub fn received_power_mw(&self, launch_power_mw: f64) -> f64 {
        launch_power_mw / db_to_linear(self.total_db())
    }

    /// Whether the link closes: received power stays above the detector
    /// sensitivity.
    #[must_use]
    pub fn link_closes(&self, launch_power_mw: f64, sensitivity_mw: f64) -> bool {
        self.received_power_mw(launch_power_mw) >= sensitivity_mw
    }

    /// Margin of the link in dB (positive = closes with room to spare).
    ///
    /// # Panics
    ///
    /// Panics if either power is not positive.
    #[must_use]
    pub fn margin_db(&self, launch_power_mw: f64, sensitivity_mw: f64) -> f64 {
        assert!(launch_power_mw > 0.0 && sensitivity_mw > 0.0);
        linear_to_db(launch_power_mw / sensitivity_mw) - self.total_db()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_additive() {
        let mut b = LossBudget::new();
        b.add("a", 1.5);
        b.add("b", 2.5);
        assert!((b.total_db() - 4.0).abs() < 1e-12);
        assert_eq!(b.items().len(), 2);
    }

    #[test]
    fn received_power_follows_db_arithmetic() {
        let mut b = LossBudget::new();
        b.add("x", 10.0);
        assert!((b.received_power_mw(1.0) - 0.1).abs() < 1e-12);
        assert!((b.received_power_mw(2.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_crossbar_link_closes_with_paper_laser_and_detector() {
        // 1.5 mW launch, 0.01 mW sensitivity, 15 pass-by clusters × 64 rings.
        let b = LossBudget::paper_crossbar_hop(15 * 64);
        assert!(b.link_closes(1.5, 0.01), "loss budget {} dB", b.total_db());
        assert!(b.margin_db(1.5, 0.01) > 0.0);
    }

    #[test]
    fn margin_goes_negative_when_loss_too_high() {
        let mut b = LossBudget::paper_crossbar_hop(64);
        b.add("catastrophic extra loss", 40.0);
        assert!(!b.link_closes(1.5, 0.01));
        assert!(b.margin_db(1.5, 0.01) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_rejected() {
        let mut b = LossBudget::new();
        b.add("gain?!", -3.0);
    }
}
