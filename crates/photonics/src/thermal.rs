//! Thermal tuning of micro-ring resonances.
//!
//! Each MRR carries a local heater that shifts its resonance onto the
//! desired DWDM channel (thesis Section 2.1.1: "The resonant frequency of
//! each MRR can be changed by applying heat to them... We assume a single
//! heater element per MRR"). The paper budgets 2.4 mW of heater power per
//! nano-metre of resonance shift (Table 3-4, after Dong et al. [28]); over a
//! 12.5 Gb/s channel this contributes the 0.24 pJ/bit tuning energy of
//! Table 3-5 (corresponding to a 1.25 nm average shift).

use crate::units::{gbps_to_bps, mw_to_w, power_to_energy_per_bit_pj};
use serde::{Deserialize, Serialize};

/// Thermal tuner (heater) attached to one micro-ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalTuner {
    /// Heater efficiency: milli-watts per nano-metre of resonance shift
    /// (2.4 mW/nm in the paper).
    pub mw_per_nm: f64,
    /// Current resonance shift being held, in nano-metres.
    pub shift_nm: f64,
    /// Line rate of the channel the ring serves, Gb/s (used to express the
    /// steady heater power as a per-bit energy).
    pub line_rate_gbps: f64,
}

impl ThermalTuner {
    /// The tuner assumed by the paper, holding the average shift that yields
    /// Table 3-5's 0.24 pJ/bit tuning energy at 12.5 Gb/s.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            mw_per_nm: 2.4,
            shift_nm: 1.25,
            line_rate_gbps: 12.5,
        }
    }

    /// Creates a tuner holding a given shift.
    ///
    /// # Panics
    ///
    /// Panics if the shift is negative.
    #[must_use]
    pub fn with_shift_nm(shift_nm: f64) -> Self {
        assert!(shift_nm >= 0.0, "resonance shift cannot be negative");
        Self {
            shift_nm,
            ..Self::paper_default()
        }
    }

    /// Heater power needed to hold the current shift, in milli-watts.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.mw_per_nm * self.shift_nm
    }

    /// Tuning energy per transmitted bit in pico-joules, assuming the channel
    /// runs at its line rate while the heater holds the shift.
    #[must_use]
    pub fn energy_pj_per_bit(&self) -> f64 {
        power_to_energy_per_bit_pj(mw_to_w(self.power_mw()), gbps_to_bps(self.line_rate_gbps))
    }

    /// Re-targets the tuner to a new shift, returning the change in steady
    /// heater power (mW, positive when more power is now needed).
    pub fn retune_nm(&mut self, new_shift_nm: f64) -> f64 {
        assert!(new_shift_nm >= 0.0, "resonance shift cannot be negative");
        let before = self.power_mw();
        self.shift_nm = new_shift_nm;
        self.power_mw() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_3_5() {
        let t = ThermalTuner::paper_default();
        // 2.4 mW/nm × 1.25 nm = 3 mW; over 12.5 Gb/s that is 0.24 pJ/bit.
        assert!((t.power_mw() - 3.0).abs() < 1e-12);
        assert!((t.energy_pj_per_bit() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_shift() {
        let t = ThermalTuner::with_shift_nm(2.5);
        assert!((t.power_mw() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn retune_reports_power_delta() {
        let mut t = ThermalTuner::paper_default();
        let delta = t.retune_nm(2.0);
        assert!((delta - (4.8 - 3.0)).abs() < 1e-12);
        let delta_down = t.retune_nm(0.0);
        assert!((delta_down + 4.8).abs() < 1e-12);
        assert_eq!(t.power_mw(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_shift_rejected() {
        let _ = ThermalTuner::with_shift_nm(-1.0);
    }
}
