//! Electro-optic ring modulators.
//!
//! The transmit side of every photonic channel converts electrical flits into
//! optical signals by modulating a laser carrier with a micro-ring modulator.
//! The thesis uses the tunable high-speed silicon microring modulator of Dong
//! et al. [28]: 12.5 Gb/s per wavelength carrier and 40 fJ/bit modulation
//! energy (Table 3-4).

use crate::mrr::MicroRingResonator;
use crate::units::fj_to_pj;
use serde::{Deserialize, Serialize};

/// An electro-optic micro-ring modulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Modulator {
    /// The ring the modulator is built around.
    pub ring: MicroRingResonator,
    /// Maximum modulation rate in Gb/s (12.5 in the paper).
    pub data_rate_gbps: f64,
    /// Dynamic modulation energy in femto-joules per bit (40 in the paper).
    pub energy_fj_per_bit: f64,
    /// Insertion loss contributed to the through path, in dB.
    pub insertion_loss_db: f64,
}

impl Modulator {
    /// The modulator assumed throughout the paper's evaluation [28].
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ring: MicroRingResonator::paper_area_ring(),
            data_rate_gbps: 12.5,
            energy_fj_per_bit: 40.0,
            insertion_loss_db: 0.5,
        }
    }

    /// Modulation energy in pico-joules per bit (0.04 pJ/bit in Table 3-5).
    #[must_use]
    pub fn energy_pj_per_bit(&self) -> f64 {
        fj_to_pj(self.energy_fj_per_bit)
    }

    /// Energy to modulate `bits` bits, in pico-joules.
    #[must_use]
    pub fn modulation_energy_pj(&self, bits: u64) -> f64 {
        self.energy_pj_per_bit() * bits as f64
    }

    /// Time to serialise `bits` bits over this single modulator, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the configured data rate is not positive.
    #[must_use]
    pub fn serialization_time_s(&self, bits: u64) -> f64 {
        assert!(self.data_rate_gbps > 0.0, "data rate must be positive");
        bits as f64 / (self.data_rate_gbps * 1e9)
    }

    /// Bits that one modulator pushes per core clock cycle.
    ///
    /// At the paper's 2.5 GHz clock and 12.5 Gb/s line rate this is exactly
    /// 5 bits per wavelength per cycle, the conversion factor used by the
    /// cycle-accurate photonic transfer model.
    #[must_use]
    pub fn bits_per_cycle(&self, clock_ghz: f64) -> f64 {
        assert!(clock_ghz > 0.0, "clock frequency must be positive");
        self.data_rate_gbps / clock_ghz
    }
}

impl Default for Modulator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_modulation_energy_matches_table_3_5() {
        let m = Modulator::paper_default();
        assert!((m.energy_pj_per_bit() - 0.04).abs() < 1e-12);
        assert!((m.modulation_energy_pj(1000) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn five_bits_per_cycle_at_paper_clock() {
        let m = Modulator::paper_default();
        assert!((m.bits_per_cycle(2.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn serialization_time_scales_linearly() {
        let m = Modulator::paper_default();
        let t1 = m.serialization_time_s(125);
        let t2 = m.serialization_time_s(250);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 12.5 Gb/s -> 125 bits take 10 ns.
        assert!((t1 - 10e-9).abs() < 1e-15);
    }
}
