//! Physical unit helpers.
//!
//! The photonic models mix quantities spanning many orders of magnitude
//! (femto-joules per bit, milli-watts, tera-hertz, micro-metres). To keep the
//! arithmetic readable and auditable, this module provides thin conversion
//! helpers and the physical constants the device models rely on. All
//! quantities are stored as `f64` in SI base units unless the name says
//! otherwise.

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Group index of a silicon strip waveguide around 1550 nm, chosen such that
/// a 2 µm-radius adiabatic micro-ring has a free spectral range of 6.92 THz
/// as reported by Biberman et al. [13] (thesis Section 2.1.1).
pub const SILICON_GROUP_INDEX: f64 = 3.448;

/// Nominal DWDM centre wavelength used by the models, metres (1550 nm).
pub const CENTER_WAVELENGTH_M: f64 = 1550e-9;

/// Converts pico-joules to joules.
#[must_use]
pub fn pj_to_j(pj: f64) -> f64 {
    pj * 1e-12
}

/// Converts joules to pico-joules.
#[must_use]
pub fn j_to_pj(j: f64) -> f64 {
    j * 1e12
}

/// Converts femto-joules to pico-joules.
#[must_use]
pub fn fj_to_pj(fj: f64) -> f64 {
    fj * 1e-3
}

/// Converts milli-watts to watts.
#[must_use]
pub fn mw_to_w(mw: f64) -> f64 {
    mw * 1e-3
}

/// Converts giga-bits-per-second to bits-per-second.
#[must_use]
pub fn gbps_to_bps(gbps: f64) -> f64 {
    gbps * 1e9
}

/// Converts bits-per-second to giga-bits-per-second.
#[must_use]
pub fn bps_to_gbps(bps: f64) -> f64 {
    bps * 1e-9
}

/// Converts giga-hertz to hertz.
#[must_use]
pub fn ghz_to_hz(ghz: f64) -> f64 {
    ghz * 1e9
}

/// Converts tera-hertz to hertz.
#[must_use]
pub fn thz_to_hz(thz: f64) -> f64 {
    thz * 1e12
}

/// Converts micro-metres to metres.
#[must_use]
pub fn um_to_m(um: f64) -> f64 {
    um * 1e-6
}

/// Converts square micro-metres to square milli-metres.
#[must_use]
pub fn um2_to_mm2(um2: f64) -> f64 {
    um2 * 1e-6
}

/// Converts a power (watts) sustained for a bit-time at `bit_rate_bps` into
/// the equivalent per-bit energy in pico-joules. This is how the laser and
/// tuning *powers* of Table 3-4 become the per-bit *energies* of Table 3-5.
#[must_use]
pub fn power_to_energy_per_bit_pj(power_w: f64, bit_rate_bps: f64) -> f64 {
    assert!(bit_rate_bps > 0.0, "bit rate must be positive");
    j_to_pj(power_w / bit_rate_bps)
}

/// Converts a dB value to a linear power ratio.
#[must_use]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB.
#[must_use]
pub fn linear_to_db(ratio: f64) -> f64 {
    assert!(ratio > 0.0, "ratio must be positive to express in dB");
    10.0 * ratio.log10()
}

/// Converts dBm to milli-watts.
#[must_use]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_linear(dbm)
}

/// Converts milli-watts to dBm.
#[must_use]
pub fn mw_to_dbm(mw: f64) -> f64 {
    linear_to_db(mw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-30)
    }

    #[test]
    fn simple_conversions_roundtrip() {
        assert!(close(j_to_pj(pj_to_j(3.7)), 3.7, 1e-12));
        assert!(close(fj_to_pj(40.0), 0.04, 1e-12));
        assert!(close(mw_to_w(1.5), 0.0015, 1e-12));
        assert!(close(gbps_to_bps(12.5), 12.5e9, 1e-12));
        assert!(close(bps_to_gbps(gbps_to_bps(7.0)), 7.0, 1e-12));
        assert!(close(um2_to_mm2(1e6), 1.0, 1e-12));
    }

    #[test]
    fn laser_power_to_energy_matches_table_3_5() {
        // 1.5 mW per wavelength at 12.5 Gb/s ≈ 0.12 pJ/bit; the thesis rounds
        // the combined launch figure to 0.15 pJ/bit (which also folds in
        // coupling overheads), so the raw conversion must come out slightly
        // below that.
        let pj = power_to_energy_per_bit_pj(mw_to_w(1.5), gbps_to_bps(12.5));
        assert!(close(pj, 0.12, 1e-9), "got {pj}");
        assert!(pj < 0.15);
    }

    #[test]
    fn db_conversions() {
        assert!(close(db_to_linear(3.0103), 2.0, 1e-4));
        assert!(close(linear_to_db(db_to_linear(-7.5)), -7.5, 1e-9));
        assert!(close(dbm_to_mw(0.0), 1.0, 1e-12));
        assert!(close(mw_to_dbm(10.0), 10.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn energy_per_bit_rejects_zero_rate() {
        let _ = power_to_energy_per_bit_pj(1.0, 0.0);
    }
}
