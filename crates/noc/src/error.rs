//! Error types for the NoC substrate.

use crate::ids::{PortId, VcId};
use std::error::Error;
use std::fmt;

/// Errors raised by the NoC substrate primitives.
///
/// The substrate is used inside a cycle-accurate inner loop, so errors are
/// lightweight enums rather than boxed trait objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocError {
    /// A flit was pushed into a virtual-channel buffer that is already full.
    BufferFull {
        /// Port holding the buffer.
        port: PortId,
        /// Virtual channel within the port.
        vc: VcId,
        /// Configured capacity of the buffer, in flits.
        capacity: usize,
    },
    /// A port index was out of range for the router it was used with.
    InvalidPort {
        /// The offending port index.
        port: PortId,
        /// Number of ports on the router.
        num_ports: usize,
    },
    /// A virtual-channel index was out of range for the port it was used with.
    InvalidVc {
        /// The offending virtual-channel index.
        vc: VcId,
        /// Number of virtual channels per port.
        num_vcs: usize,
    },
    /// A body or tail flit arrived on a virtual channel whose head flit was
    /// never seen (wormhole framing violation).
    WormholeViolation {
        /// Human readable description of the violation.
        detail: String,
    },
    /// A routing decision could not be made (e.g. destination outside the
    /// topology).
    Unroutable {
        /// Human readable description.
        detail: String,
    },
    /// A configuration parameter was invalid (zero buffers, zero ports, ...).
    InvalidConfig {
        /// Human readable description.
        detail: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::BufferFull { port, vc, capacity } => write!(
                f,
                "virtual channel buffer full (port {port}, vc {vc}, capacity {capacity} flits)"
            ),
            NocError::InvalidPort { port, num_ports } => {
                write!(f, "invalid port {port} (router has {num_ports} ports)")
            }
            NocError::InvalidVc { vc, num_vcs } => {
                write!(f, "invalid virtual channel {vc} (port has {num_vcs} VCs)")
            }
            NocError::WormholeViolation { detail } => {
                write!(f, "wormhole framing violation: {detail}")
            }
            NocError::Unroutable { detail } => write!(f, "unroutable packet: {detail}"),
            NocError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl Error for NocError {}

/// Convenience result alias used across the crate.
pub type NocResult<T> = Result<T, NocError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NocError::BufferFull {
            port: PortId(1),
            vc: VcId(2),
            capacity: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("port 1"));
        assert!(msg.contains("vc 2"));
        assert!(msg.contains("64"));

        let e = NocError::InvalidPort {
            port: PortId(9),
            num_ports: 5,
        };
        assert!(e.to_string().contains("9"));

        let e = NocError::Unroutable {
            detail: "destination 200 outside 64-core system".to_string(),
        };
        assert!(e.to_string().contains("destination 200"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error>(_e: &E) {}
        let e = NocError::InvalidConfig {
            detail: "zero ports".into(),
        };
        assert_err(&e);
    }
}
