//! Hierarchical cluster topology.
//!
//! Both the Firefly baseline and d-HetPNoC organise the chip as clusters of
//! four cores (Table 3-3). Inside a cluster the four core switches are
//! connected **all-to-all** with electrical links and each core switch has an
//! additional electrical link to the cluster's photonic router (Section 3.1:
//! "These 4 cores are interconnected using traditional copper interconnects in
//! an all-to-all manner avoiding multi-hop paths within a cluster").
//!
//! This module defines the port numbering convention used throughout the
//! reproduction:
//!
//! **Core switch ports** (one switch per core, `cores_per_cluster + 1` ports):
//!
//! * port 0 — local core (injection/ejection),
//! * ports `1 ..= cores_per_cluster - 1` — peer core switches in ascending
//!   order of their local index, skipping the switch itself,
//! * port `cores_per_cluster` — the cluster's photonic router.
//!
//! **Photonic router electrical ports** (`cores_per_cluster` ports): port `i`
//! connects to the core switch of local core `i`.

use crate::ids::{ClusterId, CoreId, PortId};
use serde::{Deserialize, Serialize};

/// The hierarchical cluster topology of the photonic NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    num_clusters: usize,
    cores_per_cluster: usize,
}

impl ClusterTopology {
    /// Creates a topology of `num_clusters` clusters of `cores_per_cluster`
    /// cores each. The paper uses 16 clusters of 4 cores (64 cores total).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or if `cores_per_cluster < 2`
    /// (a cluster needs at least two cores for the all-to-all fabric to
    /// exist).
    #[must_use]
    pub fn new(num_clusters: usize, cores_per_cluster: usize) -> Self {
        assert!(num_clusters > 0, "need at least one cluster");
        assert!(
            cores_per_cluster >= 2,
            "need at least two cores per cluster"
        );
        Self {
            num_clusters,
            cores_per_cluster,
        }
    }

    /// The 64-core / 16-cluster configuration used throughout the paper.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(16, 4)
    }

    /// Number of clusters (= number of photonic routers).
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of cores per cluster.
    #[must_use]
    pub fn cores_per_cluster(&self) -> usize {
        self.cores_per_cluster
    }

    /// Total number of cores on the chip.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.num_clusters * self.cores_per_cluster
    }

    /// Cluster that owns `core`.
    #[must_use]
    pub fn cluster_of(&self, core: CoreId) -> ClusterId {
        core.cluster(self.cores_per_cluster)
    }

    /// Local index of `core` within its cluster.
    #[must_use]
    pub fn local_index(&self, core: CoreId) -> usize {
        core.local_index(self.cores_per_cluster)
    }

    /// True when both cores live in the same cluster.
    #[must_use]
    pub fn same_cluster(&self, a: CoreId, b: CoreId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Number of ports on each core switch: local core + peers + photonic
    /// router.
    #[must_use]
    pub fn switch_ports(&self) -> usize {
        self.cores_per_cluster + 1
    }

    /// Port index of the local core on every core switch (always 0).
    #[must_use]
    pub fn local_port(&self) -> PortId {
        PortId(0)
    }

    /// Port index of the photonic router on every core switch.
    #[must_use]
    pub fn photonic_port(&self) -> PortId {
        PortId(self.cores_per_cluster)
    }

    /// Port on the switch of `from` leading to the switch of peer `to`
    /// (both must be in the same cluster and distinct).
    ///
    /// # Panics
    ///
    /// Panics if the cores are not distinct members of the same cluster.
    #[must_use]
    pub fn peer_port(&self, from: CoreId, to: CoreId) -> PortId {
        assert!(
            self.same_cluster(from, to),
            "peer_port requires cores of the same cluster"
        );
        assert_ne!(from, to, "peer_port requires distinct cores");
        let from_local = self.local_index(from);
        let to_local = self.local_index(to);
        // Peers are numbered 1.. in ascending local index, skipping `from`.
        let offset = if to_local < from_local {
            to_local
        } else {
            to_local - 1
        };
        PortId(1 + offset)
    }

    /// Inverse of [`ClusterTopology::peer_port`]: the local index of the peer
    /// reached through `port` from the switch of the core with local index
    /// `from_local`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a peer port.
    #[must_use]
    pub fn peer_of_port(&self, from_local: usize, port: PortId) -> usize {
        assert!(
            port.0 >= 1 && port.0 < self.cores_per_cluster,
            "port {port} is not a peer port"
        );
        let offset = port.0 - 1;
        if offset < from_local {
            offset
        } else {
            offset + 1
        }
    }

    /// Number of electrical ports on the photonic router (one per local core
    /// switch).
    #[must_use]
    pub fn photonic_router_ports(&self) -> usize {
        self.cores_per_cluster
    }

    /// Number of unidirectional electrical links in the whole chip:
    /// all-to-all between cluster cores (both directions) plus two per
    /// core ↔ photonic-router connection.
    #[must_use]
    pub fn num_electrical_links(&self) -> usize {
        let per_cluster =
            self.cores_per_cluster * (self.cores_per_cluster - 1) + 2 * self.cores_per_cluster;
        per_cluster * self.num_clusters
    }

    /// Iterator over all cluster ids.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.num_clusters).map(ClusterId)
    }

    /// Iterator over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_dimensions() {
        let t = ClusterTopology::paper_default();
        assert_eq!(t.num_clusters(), 16);
        assert_eq!(t.cores_per_cluster(), 4);
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.switch_ports(), 5);
        assert_eq!(t.photonic_port(), PortId(4));
        assert_eq!(t.photonic_router_ports(), 4);
    }

    #[test]
    fn cluster_membership() {
        let t = ClusterTopology::paper_default();
        assert!(t.same_cluster(CoreId(4), CoreId(7)));
        assert!(!t.same_cluster(CoreId(3), CoreId(4)));
        assert_eq!(t.cluster_of(CoreId(63)), ClusterId(15));
    }

    #[test]
    fn peer_port_numbering_skips_self() {
        let t = ClusterTopology::paper_default();
        // From core 5 (local index 1): peers are local 0, 2, 3 at ports 1, 2, 3.
        assert_eq!(t.peer_port(CoreId(5), CoreId(4)), PortId(1));
        assert_eq!(t.peer_port(CoreId(5), CoreId(6)), PortId(2));
        assert_eq!(t.peer_port(CoreId(5), CoreId(7)), PortId(3));
        // From core 4 (local index 0): peers are local 1, 2, 3 at ports 1, 2, 3.
        assert_eq!(t.peer_port(CoreId(4), CoreId(5)), PortId(1));
        assert_eq!(t.peer_port(CoreId(4), CoreId(7)), PortId(3));
    }

    #[test]
    fn peer_port_roundtrip() {
        let t = ClusterTopology::paper_default();
        for from_local in 0..4 {
            let from = ClusterId(2).core(from_local, 4);
            for to_local in 0..4 {
                if from_local == to_local {
                    continue;
                }
                let to = ClusterId(2).core(to_local, 4);
                let port = t.peer_port(from, to);
                assert_eq!(t.peer_of_port(from_local, port), to_local);
            }
        }
    }

    #[test]
    #[should_panic(expected = "same cluster")]
    fn peer_port_rejects_cross_cluster() {
        let t = ClusterTopology::paper_default();
        let _ = t.peer_port(CoreId(0), CoreId(10));
    }

    #[test]
    fn electrical_link_count() {
        let t = ClusterTopology::paper_default();
        // Per cluster: 4*3 = 12 core-to-core + 8 core<->photonic = 20; 16 clusters.
        assert_eq!(t.num_electrical_links(), 320);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = ClusterTopology::new(3, 2);
        assert_eq!(t.clusters().count(), 3);
        assert_eq!(t.cores().count(), 6);
    }
}
