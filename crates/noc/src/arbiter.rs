//! Arbitration primitives.
//!
//! The three-stage routers of the thesis perform *input arbitration* (select a
//! virtual channel per input port) and *output arbitration* (select an input
//! port per output port) every cycle. This module provides the two classic
//! arbiter implementations used for those stages:
//!
//! * [`RoundRobinArbiter`] — fair rotating-priority arbiter; the winner gets
//!   lowest priority for the next arbitration round.
//! * [`MatrixArbiter`] — least-recently-served arbiter maintaining a full
//!   priority matrix; gives strong fairness at slightly higher cost.

use serde::{Deserialize, Serialize};

/// A combinational arbiter granting one of `n` requesters per invocation.
pub trait Arbiter {
    /// Number of requesters this arbiter was built for.
    fn num_requesters(&self) -> usize;

    /// Grants one of the active requests (`requests[i] == true`) or `None`
    /// if there are no active requests. The arbiter updates its internal
    /// priority state when a grant is issued.
    ///
    /// # Panics
    ///
    /// Implementations panic if `requests.len()` differs from
    /// [`Arbiter::num_requesters`].
    fn grant(&mut self, requests: &[bool]) -> Option<usize>;

    /// Resets the arbiter to its initial priority state.
    fn reset(&mut self);
}

/// Rotating-priority (round-robin) arbiter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with the highest priority in the next arbitration round.
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter for `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        Self { n, next: 0 }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn num_requesters(&self) -> usize {
        self.n
    }

    fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(
            requests.len(),
            self.n,
            "request vector length mismatch: expected {}, got {}",
            self.n,
            requests.len()
        );
        for offset in 0..self.n {
            let idx = (self.next + offset) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }

    fn reset(&mut self) {
        self.next = 0;
    }
}

/// Least-recently-served matrix arbiter.
///
/// Maintains a boolean priority matrix `m[i][j]` meaning "i has priority over
/// j". On a grant to `w`, `w` loses priority against everyone else.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixArbiter {
    n: usize,
    matrix: Vec<bool>,
}

impl MatrixArbiter {
    /// Creates an arbiter for `n` requesters with initial priority ordered by
    /// index (0 has priority over 1, 1 over 2, ...).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        let mut matrix = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                if i < j {
                    matrix[i * n + j] = true;
                }
            }
        }
        Self { n, matrix }
    }

    fn has_priority(&self, i: usize, j: usize) -> bool {
        self.matrix[i * self.n + j]
    }

    fn demote(&mut self, w: usize) {
        for j in 0..self.n {
            if j != w {
                self.matrix[w * self.n + j] = false;
                self.matrix[j * self.n + w] = true;
            }
        }
    }
}

impl Arbiter for MatrixArbiter {
    fn num_requesters(&self) -> usize {
        self.n
    }

    fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(
            requests.len(),
            self.n,
            "request vector length mismatch: expected {}, got {}",
            self.n,
            requests.len()
        );
        let mut winner: Option<usize> = None;
        for i in 0..self.n {
            if !requests[i] {
                continue;
            }
            // i wins if it has priority over every other active requester.
            let beats_all = (0..self.n)
                .filter(|&j| j != i && requests[j])
                .all(|j| self.has_priority(i, j));
            if beats_all {
                winner = Some(i);
                break;
            }
        }
        if let Some(w) = winner {
            self.demote(w);
        }
        winner
    }

    fn reset(&mut self) {
        *self = Self::new(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_fairly() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(arb.grant(&all), Some(0));
        assert_eq!(arb.grant(&all), Some(1));
        assert_eq!(arb.grant(&all), Some(2));
        assert_eq!(arb.grant(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_inactive() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(&[false, false, true, false]), Some(2));
        // Priority now starts at 3.
        assert_eq!(arb.grant(&[true, false, true, true]), Some(3));
        assert_eq!(arb.grant(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn round_robin_none_when_no_requests() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
    }

    #[test]
    fn round_robin_reset_restores_priority() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[true, true]), Some(0));
        arb.reset();
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn round_robin_length_mismatch_panics() {
        let mut arb = RoundRobinArbiter::new(3);
        let _ = arb.grant(&[true, true]);
    }

    #[test]
    fn matrix_arbiter_least_recently_served() {
        let mut arb = MatrixArbiter::new(3);
        let all = [true, true, true];
        let first = arb.grant(&all).unwrap();
        let second = arb.grant(&all).unwrap();
        let third = arb.grant(&all).unwrap();
        // All three must be served exactly once over three rounds.
        let mut seen = [first, second, third];
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2]);
        // After serving everyone, the first-served is most stale and wins again.
        assert_eq!(arb.grant(&all), Some(first));
    }

    #[test]
    fn matrix_arbiter_only_active_requesters_win() {
        let mut arb = MatrixArbiter::new(4);
        for _ in 0..10 {
            let g = arb.grant(&[false, true, false, true]).unwrap();
            assert!(g == 1 || g == 3);
        }
    }

    #[test]
    fn matrix_arbiter_no_requests() {
        let mut arb = MatrixArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
    }

    #[test]
    fn fairness_over_many_rounds() {
        // Under constant full load every requester receives the same number of
        // grants (+/- 1) for both arbiters.
        let n = 5;
        let rounds = 1000;
        for arb in [
            Box::new(RoundRobinArbiter::new(n)) as Box<dyn Arbiter>,
            Box::new(MatrixArbiter::new(n)) as Box<dyn Arbiter>,
        ] {
            let mut arb = arb;
            let mut counts = vec![0usize; n];
            let all = vec![true; n];
            for _ in 0..rounds {
                counts[arb.grant(&all).unwrap()] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(max - min <= 1, "unfair grants: {counts:?}");
        }
    }
}
