//! Packets, bandwidth classes and wormhole framing.
//!
//! A packet is the unit of data transfer between two cores. The evaluation in
//! the thesis uses three "bandwidth sets" (Table 3-1 / Table 3-3); within each
//! set, applications fall into four bandwidth classes whose required channel
//! bandwidths are in the ratio 1 : 2 : 4 : 8 (e.g. 12.5, 25, 50 and 100 Gbps
//! for bandwidth set 1). [`BandwidthClass`] captures the relative requirement;
//! the absolute Gbps value is obtained by multiplying with the minimum channel
//! bandwidth of the bandwidth set in use (see `pnoc-sim`).

use crate::flit::{Flit, FlitKind, FlitPayload};
use crate::ids::{CoreId, PacketId, VcId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative bandwidth requirement of an application flow.
///
/// The four classes correspond to the four per-application bandwidths of
/// Table 3-1 of the thesis, in increasing order. The relative wavelength
/// requirement doubles from one class to the next.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BandwidthClass {
    /// Lowest bandwidth application (12.5 Gbps in BW set 1).
    #[default]
    Low,
    /// Second lowest (25 Gbps in BW set 1).
    MediumLow,
    /// Second highest (50 Gbps in BW set 1).
    MediumHigh,
    /// Highest bandwidth application (100 Gbps in BW set 1).
    High,
}

impl BandwidthClass {
    /// All classes in increasing bandwidth order.
    pub const ALL: [BandwidthClass; 4] = [
        BandwidthClass::Low,
        BandwidthClass::MediumLow,
        BandwidthClass::MediumHigh,
        BandwidthClass::High,
    ];

    /// Index of the class (0 = lowest, 3 = highest).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            BandwidthClass::Low => 0,
            BandwidthClass::MediumLow => 1,
            BandwidthClass::MediumHigh => 2,
            BandwidthClass::High => 3,
        }
    }

    /// Bandwidth multiplier relative to the lowest class (1, 2, 4, 8).
    ///
    /// Multiplying by the minimum channel bandwidth of a bandwidth set yields
    /// the absolute application bandwidth; multiplying by the number of
    /// wavelengths of the minimum channel yields the wavelength requirement.
    #[must_use]
    pub fn multiplier(self) -> usize {
        1 << self.index()
    }

    /// Builds a class from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 3`.
    #[must_use]
    pub fn from_index(idx: usize) -> Self {
        Self::ALL[idx]
    }
}

impl fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BandwidthClass::Low => "low",
            BandwidthClass::MediumLow => "medium-low",
            BandwidthClass::MediumHigh => "medium-high",
            BandwidthClass::High => "high",
        };
        f.write_str(s)
    }
}

/// A request for a packet transfer, produced by a traffic model before the
/// packet is admitted into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDescriptor {
    /// Source core.
    pub src: CoreId,
    /// Destination core.
    pub dst: CoreId,
    /// Number of flits in the packet.
    pub num_flits: u32,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Bandwidth class of the flow this packet belongs to.
    pub class: BandwidthClass,
    /// Cycle at which the traffic generator created the request.
    pub created_cycle: u64,
}

impl PacketDescriptor {
    /// Total payload size of the packet in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        u64::from(self.num_flits) * u64::from(self.flit_bits)
    }
}

/// A packet admitted into the network, with an assigned id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Transfer description.
    pub descriptor: PacketDescriptor,
    /// Cycle at which the head flit was injected into the source switch.
    pub injected_cycle: u64,
}

impl Packet {
    /// Total payload size of the packet in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.descriptor.total_bits()
    }
}

/// Converts packets into wormhole flit sequences.
#[derive(Debug, Default, Clone)]
pub struct PacketFramer;

impl PacketFramer {
    /// Frames `packet` into its flit sequence, assigning the given virtual
    /// channel to every flit.
    ///
    /// A packet of one flit produces a single [`FlitKind::Single`] flit;
    /// longer packets produce `Head, Body*, Tail`.
    #[must_use]
    pub fn frame(packet: &Packet, vc: VcId) -> Vec<Flit> {
        let n = packet.descriptor.num_flits.max(1);
        (0..n)
            .map(|seq| {
                let kind = if n == 1 {
                    FlitKind::Single
                } else if seq == 0 {
                    FlitKind::Head
                } else if seq == n - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit {
                    packet: packet.id,
                    kind,
                    payload: FlitPayload::Data,
                    src: packet.descriptor.src,
                    dst: packet.descriptor.dst,
                    seq,
                    packet_len: n,
                    bits: packet.descriptor.flit_bits,
                    class: packet.descriptor.class,
                    created_cycle: packet.descriptor.created_cycle,
                    injected_cycle: packet.injected_cycle,
                    vc,
                }
            })
            .collect()
    }
}

/// Reassembles flits back into packets at the destination, verifying wormhole
/// framing along the way.
#[derive(Debug, Default, Clone)]
pub struct PacketReassembler {
    in_flight: std::collections::HashMap<PacketId, u32>,
}

impl PacketReassembler {
    /// Creates an empty reassembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of `flit`. Returns `Some(packet_id)` when the
    /// packet is complete (its tail flit arrived and every flit was seen).
    ///
    /// Returns `None` while the packet is still incomplete.
    ///
    /// # Panics
    ///
    /// Panics if flits of a packet arrive out of order, which would indicate a
    /// bug in the wormhole implementation.
    pub fn accept(&mut self, flit: &Flit) -> Option<PacketId> {
        let seen = self.in_flight.entry(flit.packet).or_insert(0);
        assert_eq!(
            *seen, flit.seq,
            "out-of-order flit for packet {:?}: expected seq {}, got {}",
            flit.packet, seen, flit.seq
        );
        *seen += 1;
        if flit.is_tail() {
            assert_eq!(
                *seen, flit.packet_len,
                "tail flit arrived before all body flits of packet {:?}",
                flit.packet
            );
            self.in_flight.remove(&flit.packet);
            Some(flit.packet)
        } else {
            None
        }
    }

    /// Number of packets currently partially received.
    #[must_use]
    pub fn incomplete(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(num_flits: u32) -> Packet {
        Packet {
            id: PacketId(42),
            descriptor: PacketDescriptor {
                src: CoreId(1),
                dst: CoreId(17),
                num_flits,
                flit_bits: 32,
                class: BandwidthClass::MediumHigh,
                created_cycle: 100,
            },
            injected_cycle: 105,
        }
    }

    #[test]
    fn class_multipliers_double() {
        assert_eq!(BandwidthClass::Low.multiplier(), 1);
        assert_eq!(BandwidthClass::MediumLow.multiplier(), 2);
        assert_eq!(BandwidthClass::MediumHigh.multiplier(), 4);
        assert_eq!(BandwidthClass::High.multiplier(), 8);
    }

    #[test]
    fn class_from_index_roundtrip() {
        for c in BandwidthClass::ALL {
            assert_eq!(BandwidthClass::from_index(c.index()), c);
        }
    }

    #[test]
    fn descriptor_total_bits() {
        let p = packet(64);
        assert_eq!(p.total_bits(), 64 * 32);
    }

    #[test]
    fn framing_single_flit_packet() {
        let flits = PacketFramer::frame(&packet(1), VcId(3));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        assert_eq!(flits[0].vc, VcId(3));
    }

    #[test]
    fn framing_multi_flit_packet() {
        let flits = PacketFramer::frame(&packet(5), VcId(0));
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        for f in &flits[1..4] {
            assert_eq!(f.kind, FlitKind::Body);
        }
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.packet_len, 5);
            assert_eq!(f.packet, PacketId(42));
        }
    }

    #[test]
    fn reassembler_completes_packet_in_order() {
        let p = packet(4);
        let flits = PacketFramer::frame(&p, VcId(0));
        let mut r = PacketReassembler::new();
        assert_eq!(r.accept(&flits[0]), None);
        assert_eq!(r.accept(&flits[1]), None);
        assert_eq!(r.accept(&flits[2]), None);
        assert_eq!(r.accept(&flits[3]), Some(PacketId(42)));
        assert_eq!(r.incomplete(), 0);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn reassembler_detects_out_of_order() {
        let p = packet(4);
        let flits = PacketFramer::frame(&p, VcId(0));
        let mut r = PacketReassembler::new();
        r.accept(&flits[0]);
        r.accept(&flits[2]);
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(BandwidthClass::High.to_string(), "high");
        assert_eq!(BandwidthClass::Low.to_string(), "low");
    }
}
