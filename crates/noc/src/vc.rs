//! Virtual-channel buffers.
//!
//! Each router port holds a set of virtual channels (16 per port in the
//! paper's configuration, Table 3-3), each a FIFO of flits with a fixed
//! capacity (64 flits per VC in the paper). Virtual channels decouple
//! independent packets sharing a physical link so that a blocked wormhole
//! does not stall unrelated traffic (Section 1.4 of the thesis).

use crate::error::{NocError, NocResult};
use crate::flit::Flit;
use crate::ids::{PortId, VcId};
use std::collections::VecDeque;

/// A single virtual-channel FIFO.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    fifo: VecDeque<(Flit, u64)>,
    capacity: usize,
    /// Output port assigned to the wormhole currently occupying this VC
    /// (established by the head flit, released by the tail flit).
    assigned_output: Option<PortId>,
}

impl VcBuffer {
    /// Creates an empty buffer with room for `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VC buffer capacity must be non-zero");
        Self {
            fifo: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            assigned_output: None,
        }
    }

    /// Configured capacity in flits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in flits.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// True when no flits are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// True when the buffer cannot accept any more flits.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.fifo.len() >= self.capacity
    }

    /// Number of free flit slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.fifo.len()
    }

    /// Pushes a flit into the buffer, recording the cycle of arrival.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BufferFull`] when the buffer is at capacity.
    pub fn push(&mut self, flit: Flit, cycle: u64) -> NocResult<()> {
        if self.is_full() {
            return Err(NocError::BufferFull {
                port: PortId(usize::MAX),
                vc: flit.vc,
                capacity: self.capacity,
            });
        }
        self.fifo.push_back((flit, cycle));
        Ok(())
    }

    /// Returns the head-of-line flit (and its arrival cycle) without removing it.
    #[must_use]
    pub fn front(&self) -> Option<(&Flit, u64)> {
        self.fifo.front().map(|(f, c)| (f, *c))
    }

    /// Removes and returns the head-of-line flit and its arrival cycle.
    pub fn pop(&mut self) -> Option<(Flit, u64)> {
        self.fifo.pop_front()
    }

    /// Output port currently assigned to the wormhole occupying this VC.
    #[must_use]
    pub fn assigned_output(&self) -> Option<PortId> {
        self.assigned_output
    }

    /// Assigns an output port (done when the head flit is routed).
    pub fn assign_output(&mut self, port: PortId) {
        self.assigned_output = Some(port);
    }

    /// Releases the output-port assignment (done when the tail flit departs).
    pub fn release_output(&mut self) {
        self.assigned_output = None;
    }

    /// Sum of bits of all buffered flits (used for buffer-energy accounting).
    #[must_use]
    pub fn buffered_bits(&self) -> u64 {
        self.fifo.iter().map(|(f, _)| u64::from(f.bits)).sum()
    }
}

/// A set of virtual channels belonging to one router port.
#[derive(Debug, Clone)]
pub struct VcSet {
    vcs: Vec<VcBuffer>,
}

impl VcSet {
    /// Creates `num_vcs` virtual channels of `depth` flits each.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` is zero or `depth` is zero.
    #[must_use]
    pub fn new(num_vcs: usize, depth: usize) -> Self {
        assert!(num_vcs > 0, "a port needs at least one virtual channel");
        Self {
            vcs: (0..num_vcs).map(|_| VcBuffer::new(depth)).collect(),
        }
    }

    /// Number of virtual channels in the set.
    #[must_use]
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Immutable access to a VC.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidVc`] if the index is out of range.
    pub fn vc(&self, vc: VcId) -> NocResult<&VcBuffer> {
        self.vcs.get(vc.0).ok_or(NocError::InvalidVc {
            vc,
            num_vcs: self.vcs.len(),
        })
    }

    /// Mutable access to a VC.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidVc`] if the index is out of range.
    pub fn vc_mut(&mut self, vc: VcId) -> NocResult<&mut VcBuffer> {
        let n = self.vcs.len();
        self.vcs
            .get_mut(vc.0)
            .ok_or(NocError::InvalidVc { vc, num_vcs: n })
    }

    /// Iterates over `(VcId, &VcBuffer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VcId, &VcBuffer)> {
        self.vcs.iter().enumerate().map(|(i, b)| (VcId(i), b))
    }

    /// Total occupancy across all VCs, in flits.
    #[must_use]
    pub fn total_occupancy(&self) -> usize {
        self.vcs.iter().map(VcBuffer::occupancy).sum()
    }

    /// Total buffered bits across all VCs.
    #[must_use]
    pub fn buffered_bits(&self) -> u64 {
        self.vcs.iter().map(VcBuffer::buffered_bits).sum()
    }

    /// Returns the id of a VC that could accept a new packet's head flit:
    /// an empty VC with no wormhole assignment. Packets always start in an
    /// empty VC so that flits of different packets never interleave within a
    /// single FIFO.
    #[must_use]
    pub fn free_vc(&self) -> Option<VcId> {
        self.vcs
            .iter()
            .position(|b| b.is_empty() && b.assigned_output().is_none())
            .map(VcId)
    }

    /// True when every VC is completely empty.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.vcs.iter().all(VcBuffer::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitPayload};
    use crate::ids::{CoreId, PacketId};
    use crate::packet::BandwidthClass;

    fn flit(vc: usize) -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Single,
            payload: FlitPayload::Data,
            src: CoreId(0),
            dst: CoreId(1),
            seq: 0,
            packet_len: 1,
            bits: 32,
            class: BandwidthClass::Low,
            created_cycle: 0,
            injected_cycle: 0,
            vc: VcId(vc),
        }
    }

    #[test]
    fn buffer_push_pop_fifo_order() {
        let mut b = VcBuffer::new(4);
        for i in 0..4 {
            let mut f = flit(0);
            f.seq = i;
            b.push(f, u64::from(i)).unwrap();
        }
        assert!(b.is_full());
        assert_eq!(b.free_slots(), 0);
        for i in 0..4 {
            let (f, cycle) = b.pop().unwrap();
            assert_eq!(f.seq, i);
            assert_eq!(cycle, u64::from(i));
        }
        assert!(b.is_empty());
    }

    #[test]
    fn buffer_rejects_overflow() {
        let mut b = VcBuffer::new(1);
        b.push(flit(0), 0).unwrap();
        let err = b.push(flit(0), 1).unwrap_err();
        assert!(matches!(err, NocError::BufferFull { .. }));
    }

    #[test]
    fn buffer_tracks_bits() {
        let mut b = VcBuffer::new(8);
        b.push(flit(0), 0).unwrap();
        b.push(flit(0), 0).unwrap();
        assert_eq!(b.buffered_bits(), 64);
    }

    #[test]
    fn buffer_output_assignment_lifecycle() {
        let mut b = VcBuffer::new(2);
        assert_eq!(b.assigned_output(), None);
        b.assign_output(PortId(3));
        assert_eq!(b.assigned_output(), Some(PortId(3)));
        b.release_output();
        assert_eq!(b.assigned_output(), None);
    }

    #[test]
    fn vcset_free_vc_skips_assigned() {
        let mut set = VcSet::new(2, 2);
        assert_eq!(set.free_vc(), Some(VcId(0)));
        set.vc_mut(VcId(0)).unwrap().assign_output(PortId(1));
        assert_eq!(set.free_vc(), Some(VcId(1)));
        set.vc_mut(VcId(1)).unwrap().push(flit(1), 0).unwrap();
        assert_eq!(set.free_vc(), None);
    }

    #[test]
    fn vcset_occupancy_and_idle() {
        let mut set = VcSet::new(3, 4);
        assert!(set.is_idle());
        set.vc_mut(VcId(2)).unwrap().push(flit(2), 0).unwrap();
        assert_eq!(set.total_occupancy(), 1);
        assert!(!set.is_idle());
        assert_eq!(set.buffered_bits(), 32);
    }

    #[test]
    fn vcset_invalid_index_is_error() {
        let set = VcSet::new(2, 2);
        assert!(matches!(
            set.vc(VcId(5)),
            Err(NocError::InvalidVc { num_vcs: 2, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = VcBuffer::new(0);
    }
}
