//! Strongly-typed identifiers for cores, clusters, routers, ports, virtual
//! channels and packets.
//!
//! The d-HetPNoC system is organised hierarchically: `N_C` cores are grouped
//! into clusters of `cores_per_cluster` cores (4 in the paper), and each
//! cluster owns one photonic router. The identifier types in this module make
//! the core ↔ cluster arithmetic explicit and hard to get wrong.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processing core (0-based, global across the chip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Identifier of a cluster of cores (0-based). Each cluster owns exactly one
/// photonic router in both the Firefly baseline and d-HetPNoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub usize);

/// Identifier of a router (electrical core switch or photonic router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub usize);

/// Identifier of a port on a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub usize);

/// Identifier of a virtual channel within a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(pub usize);

/// Globally unique packet identifier, assigned at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

macro_rules! impl_display_and_from {
    ($t:ty, $inner:ty) => {
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl From<$inner> for $t {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
        impl From<$t> for $inner {
            fn from(v: $t) -> Self {
                v.0
            }
        }
    };
}

impl_display_and_from!(CoreId, usize);
impl_display_and_from!(ClusterId, usize);
impl_display_and_from!(RouterId, usize);
impl_display_and_from!(PortId, usize);
impl_display_and_from!(VcId, usize);
impl_display_and_from!(PacketId, u64);

impl CoreId {
    /// Returns the cluster this core belongs to, given the cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_cluster` is zero.
    #[must_use]
    pub fn cluster(self, cores_per_cluster: usize) -> ClusterId {
        assert!(cores_per_cluster > 0, "cores_per_cluster must be non-zero");
        ClusterId(self.0 / cores_per_cluster)
    }

    /// Returns the index of this core within its cluster (`0..cores_per_cluster`).
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_cluster` is zero.
    #[must_use]
    pub fn local_index(self, cores_per_cluster: usize) -> usize {
        assert!(cores_per_cluster > 0, "cores_per_cluster must be non-zero");
        self.0 % cores_per_cluster
    }

    /// Returns the raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl ClusterId {
    /// Returns the global [`CoreId`] of the `local`-th core of this cluster.
    #[must_use]
    pub fn core(self, local: usize, cores_per_cluster: usize) -> CoreId {
        assert!(
            local < cores_per_cluster,
            "local core index {local} out of range (cluster size {cores_per_cluster})"
        );
        CoreId(self.0 * cores_per_cluster + local)
    }

    /// Returns an iterator over all global core ids in this cluster.
    pub fn cores(self, cores_per_cluster: usize) -> impl Iterator<Item = CoreId> {
        let base = self.0 * cores_per_cluster;
        (0..cores_per_cluster).map(move |i| CoreId(base + i))
    }

    /// Returns the raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl PacketId {
    /// A sentinel id used for uninitialised slots in buffers; never assigned
    /// to a real packet by [`PacketIdAllocator`].
    pub const INVALID: PacketId = PacketId(u64::MAX);
}

/// Monotonically increasing allocator of [`PacketId`]s.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PacketIdAllocator {
    next: u64,
}

impl PacketIdAllocator {
    /// Creates an allocator starting at id 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh, never-before-returned id.
    pub fn allocate(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_to_cluster_mapping() {
        assert_eq!(CoreId(0).cluster(4), ClusterId(0));
        assert_eq!(CoreId(3).cluster(4), ClusterId(0));
        assert_eq!(CoreId(4).cluster(4), ClusterId(1));
        assert_eq!(CoreId(63).cluster(4), ClusterId(15));
    }

    #[test]
    fn core_local_index() {
        assert_eq!(CoreId(0).local_index(4), 0);
        assert_eq!(CoreId(5).local_index(4), 1);
        assert_eq!(CoreId(63).local_index(4), 3);
    }

    #[test]
    fn cluster_to_core_roundtrip() {
        for c in 0..16 {
            for l in 0..4 {
                let core = ClusterId(c).core(l, 4);
                assert_eq!(core.cluster(4), ClusterId(c));
                assert_eq!(core.local_index(4), l);
            }
        }
    }

    #[test]
    fn cluster_cores_iterator() {
        let cores: Vec<_> = ClusterId(3).cores(4).collect();
        assert_eq!(cores, vec![CoreId(12), CoreId(13), CoreId(14), CoreId(15)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_core_out_of_range_panics() {
        let _ = ClusterId(0).core(4, 4);
    }

    #[test]
    fn packet_id_allocator_is_monotonic_and_unique() {
        let mut alloc = PacketIdAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        let c = alloc.allocate();
        assert!(a < b && b < c);
        assert_eq!(alloc.allocated(), 3);
        assert_ne!(a, PacketId::INVALID);
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(CoreId(7).to_string(), "7");
        assert_eq!(usize::from(ClusterId(9)), 9);
        let p: PortId = 2usize.into();
        assert_eq!(p, PortId(2));
    }
}
