//! Three-stage electrical router.
//!
//! The thesis adopts the switch architecture of Pande et al. [24]: a
//! three-stage pipeline of **input arbitration**, **routing / crossbar
//! traversal** and **output arbitration** (Section 3.3.2). Each port carries
//! a set of virtual channels; wormhole switching is used, i.e. the head flit
//! of a packet claims an output port for its virtual channel and the tail
//! flit releases it.
//!
//! The router is driven externally by the cycle-accurate engine: the caller
//! pushes incoming flits with [`ElectricalRouter::accept`] and calls
//! [`ElectricalRouter::step`] once per cycle, providing a closure that tells
//! the router whether the downstream buffer of a given output port / VC can
//! accept a flit this cycle (credit-based backpressure).

use crate::arbiter::{Arbiter, RoundRobinArbiter};
use crate::crossbar::Crossbar;
use crate::error::{NocError, NocResult};
use crate::flit::Flit;
use crate::ids::{CoreId, PortId, RouterId, VcId};
use crate::vc::VcSet;
use std::fmt;

/// Static configuration of an [`ElectricalRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSpec {
    /// Number of ports (inputs and outputs are symmetric).
    pub num_ports: usize,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Buffer depth per virtual channel, in flits.
    pub vc_depth: usize,
    /// Pipeline latency in cycles a flit spends in the router before it may
    /// leave (3 in the paper: input arbitration, routing, output arbitration).
    pub pipeline_latency: u64,
}

impl RouterSpec {
    /// Creates a spec with the paper's three-cycle pipeline.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(num_ports: usize, num_vcs: usize, vc_depth: usize) -> Self {
        assert!(num_ports > 0 && num_vcs > 0 && vc_depth > 0);
        Self {
            num_ports,
            num_vcs,
            vc_depth,
            pipeline_latency: 3,
        }
    }

    /// Overrides the pipeline latency (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    #[must_use]
    pub fn with_pipeline_latency(mut self, latency: u64) -> Self {
        assert!(latency >= 1, "pipeline latency must be at least 1 cycle");
        self.pipeline_latency = latency;
        self
    }

    /// The paper's core-switch configuration: 5 ports (local core, 3 peers,
    /// photonic router), 16 VCs per port, 64-flit buffers (Table 3-3).
    #[must_use]
    pub fn paper_core_switch() -> Self {
        Self::new(5, 16, 64)
    }
}

/// A flit leaving the router through an output port in the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputGrant {
    /// Output port the flit leaves through.
    pub output: PortId,
    /// Virtual channel the flit travels on.
    pub vc: VcId,
    /// The flit itself.
    pub flit: Flit,
}

/// Route-computation function: maps a destination core to an output port.
pub type RouteFn = Box<dyn Fn(CoreId) -> PortId + Send + Sync>;

/// The three-stage electrical router.
pub struct ElectricalRouter {
    id: RouterId,
    spec: RouterSpec,
    inputs: Vec<VcSet>,
    input_arbiters: Vec<RoundRobinArbiter>,
    output_arbiters: Vec<RoundRobinArbiter>,
    crossbar: Crossbar,
    route_fn: Option<RouteFn>,
    forwarded_flits: u64,
    forwarded_bits: u64,
    /// Per-cycle working storage, kept across cycles so [`Self::step`] never
    /// allocates: one nomination slot per input port, one request flag per VC
    /// (stage 1) and one per input port (stage 3).
    scratch_nominations: Vec<Option<(VcId, PortId)>>,
    scratch_vc_requests: Vec<bool>,
    scratch_port_requests: Vec<bool>,
}

impl fmt::Debug for ElectricalRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElectricalRouter")
            .field("id", &self.id)
            .field("spec", &self.spec)
            .field("forwarded_flits", &self.forwarded_flits)
            .finish_non_exhaustive()
    }
}

impl ElectricalRouter {
    /// Creates a router with empty buffers and no routing function.
    #[must_use]
    pub fn new(id: RouterId, spec: RouterSpec) -> Self {
        Self {
            id,
            spec,
            inputs: (0..spec.num_ports)
                .map(|_| VcSet::new(spec.num_vcs, spec.vc_depth))
                .collect(),
            input_arbiters: (0..spec.num_ports)
                .map(|_| RoundRobinArbiter::new(spec.num_vcs))
                .collect(),
            output_arbiters: (0..spec.num_ports)
                .map(|_| RoundRobinArbiter::new(spec.num_ports))
                .collect(),
            crossbar: Crossbar::new(spec.num_ports),
            route_fn: None,
            forwarded_flits: 0,
            forwarded_bits: 0,
            scratch_nominations: vec![None; spec.num_ports],
            scratch_vc_requests: vec![false; spec.num_vcs],
            scratch_port_requests: vec![false; spec.num_ports],
        }
    }

    /// Installs the route-computation function.
    pub fn set_route_fn(&mut self, f: RouteFn) {
        self.route_fn = Some(f);
    }

    /// Router identifier.
    #[must_use]
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// Static configuration.
    #[must_use]
    pub fn spec(&self) -> RouterSpec {
        self.spec
    }

    /// Number of ports.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.spec.num_ports
    }

    /// Immutable access to the VC set of an input port.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidPort`] if the port index is out of range.
    pub fn input(&self, port: PortId) -> NocResult<&VcSet> {
        self.inputs.get(port.0).ok_or(NocError::InvalidPort {
            port,
            num_ports: self.spec.num_ports,
        })
    }

    /// True when the input buffer `(port, vc)` can accept one more flit.
    #[must_use]
    pub fn can_accept(&self, port: PortId, vc: VcId) -> bool {
        self.inputs
            .get(port.0)
            .and_then(|set| set.vc(vc).ok())
            .map(|b| !b.is_full())
            .unwrap_or(false)
    }

    /// Finds a free (empty, unassigned) VC on `port` for a new packet.
    #[must_use]
    pub fn free_input_vc(&self, port: PortId) -> Option<VcId> {
        self.inputs.get(port.0).and_then(VcSet::free_vc)
    }

    /// Pushes a flit into input buffer `(port, vc)` at `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidPort`], [`NocError::InvalidVc`] or
    /// [`NocError::BufferFull`] on failure.
    pub fn accept(&mut self, port: PortId, vc: VcId, flit: Flit, cycle: u64) -> NocResult<()> {
        let num_ports = self.spec.num_ports;
        let set = self
            .inputs
            .get_mut(port.0)
            .ok_or(NocError::InvalidPort { port, num_ports })?;
        set.vc_mut(vc)?.push(flit, cycle).map_err(|e| match e {
            NocError::BufferFull { capacity, .. } => NocError::BufferFull { port, vc, capacity },
            other => other,
        })
    }

    /// Total number of flits buffered in the router.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(VcSet::total_occupancy).sum()
    }

    /// Total number of bits buffered in the router (for buffer-energy
    /// accounting).
    #[must_use]
    pub fn buffered_bits(&self) -> u64 {
        self.inputs.iter().map(VcSet::buffered_bits).sum()
    }

    /// Flits forwarded through the crossbar over the router's lifetime.
    #[must_use]
    pub fn forwarded_flits(&self) -> u64 {
        self.forwarded_flits
    }

    /// Bits forwarded through the crossbar over the router's lifetime.
    #[must_use]
    pub fn forwarded_bits(&self) -> u64 {
        self.forwarded_bits
    }

    /// True when every input buffer is empty.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(VcSet::is_idle)
    }

    /// Advances the router by one cycle.
    ///
    /// `can_send(output, vc, flit)` must return true when the downstream
    /// buffer attached to `output` can accept the flit on virtual channel `vc`
    /// this cycle. At most one flit leaves per output port per cycle; at most
    /// one flit leaves per input port per cycle.
    ///
    /// # Panics
    ///
    /// Panics if no routing function has been installed and a head flit needs
    /// routing.
    pub fn step<F>(&mut self, cycle: u64, can_send: F) -> Vec<OutputGrant>
    where
        F: FnMut(PortId, VcId, &Flit) -> bool,
    {
        let mut grants = Vec::new();
        self.step_into(cycle, can_send, &mut grants);
        grants
    }

    /// Allocation-free variant of [`Self::step`]: appends this cycle's output
    /// grants to `grants` instead of returning a fresh `Vec`. The buffer is
    /// **not** cleared — the hot loop of `pnoc-sim` reuses one buffer across
    /// all switches of a cycle.
    // Index-based loops: the bodies index several parallel per-port /
    // per-VC structures while mutably borrowing `self.inputs`, which
    // iterator adapters cannot express.
    #[allow(clippy::needless_range_loop)]
    pub fn step_into<F>(&mut self, cycle: u64, mut can_send: F, grants: &mut Vec<OutputGrant>)
    where
        F: FnMut(PortId, VcId, &Flit) -> bool,
    {
        self.crossbar.clear();
        let num_ports = self.spec.num_ports;
        let latency = self.spec.pipeline_latency;

        // Stage 1+2: input arbitration and route computation.
        // For every input port pick one candidate VC whose head-of-line flit
        // is eligible (pipeline latency satisfied), routed, and whose
        // downstream buffer can take it.
        self.scratch_nominations.fill(None);
        for p in 0..num_ports {
            // Route any head flit that does not have an output assignment yet.
            self.scratch_vc_requests.fill(false);
            for v in 0..self.spec.num_vcs {
                let set = &mut self.inputs[p];
                let vc = set.vc_mut(VcId(v)).expect("vc index in range");
                let Some((flit, entered)) = vc.front().map(|(f, c)| (*f, c)) else {
                    continue;
                };
                if cycle < entered + latency.saturating_sub(1) {
                    continue; // still traversing the router pipeline
                }
                if vc.assigned_output().is_none() {
                    if flit.is_head() {
                        let route = self
                            .route_fn
                            .as_ref()
                            .expect("routing function must be installed before stepping");
                        let out = route(flit.dst);
                        assert!(
                            out.0 < num_ports,
                            "routing function returned invalid port {out} (router has {num_ports})"
                        );
                        vc.assign_output(out);
                    } else {
                        // A body/tail flit can only be at the head of a VC whose
                        // wormhole is already established; if the assignment was
                        // released the framing is broken.
                        panic!(
                            "wormhole framing violation at router {:?}: body/tail flit {:?} with no output assignment",
                            self.id, flit.packet
                        );
                    }
                }
                let out = vc.assigned_output().expect("just assigned");
                if can_send(out, VcId(v), &flit) && self.crossbar.output_free(out) {
                    self.scratch_vc_requests[v] = true;
                }
            }
            if let Some(winner) = self.input_arbiters[p].grant(&self.scratch_vc_requests) {
                let out = self.inputs[p]
                    .vc(VcId(winner))
                    .expect("vc in range")
                    .assigned_output()
                    .expect("candidate has assignment");
                self.scratch_nominations[p] = Some((VcId(winner), out));
            }
        }

        // Stage 3: output arbitration — each output port picks one nominating
        // input port; the crossbar connection is established and the flit
        // leaves the router.
        for out in 0..num_ports {
            for p in 0..num_ports {
                self.scratch_port_requests[p] = self.scratch_nominations[p]
                    .map(|(_, o)| o.0 == out)
                    .unwrap_or(false);
            }
            let Some(winner_port) = self.output_arbiters[out].grant(&self.scratch_port_requests)
            else {
                continue;
            };
            let (vc, _) = self.scratch_nominations[winner_port].expect("winner nominated");
            if self
                .crossbar
                .connect(PortId(winner_port), PortId(out))
                .is_none()
            {
                continue;
            }
            let buffer = self.inputs[winner_port].vc_mut(vc).expect("vc in range");
            let (flit, _entered) = buffer.pop().expect("candidate buffer non-empty");
            if flit.is_tail() {
                buffer.release_output();
            }
            self.forwarded_flits += 1;
            self.forwarded_bits += u64::from(flit.bits);
            grants.push(OutputGrant {
                output: PortId(out),
                vc,
                flit,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitPayload};
    use crate::ids::PacketId;
    use crate::packet::BandwidthClass;

    fn mk_flit(packet: u64, kind: FlitKind, seq: u32, len: u32, dst: usize) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            payload: FlitPayload::Data,
            src: CoreId(0),
            dst: CoreId(dst),
            seq,
            packet_len: len,
            bits: 32,
            class: BandwidthClass::Low,
            created_cycle: 0,
            injected_cycle: 0,
            vc: VcId(0),
        }
    }

    fn fixed_route(port: usize) -> RouteFn {
        Box::new(move |_dst| PortId(port))
    }

    #[test]
    fn single_flit_traverses_after_pipeline_latency() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(2, 2, 4));
        r.set_route_fn(fixed_route(1));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 9), 0)
            .unwrap();
        // Pipeline latency 3: flit enters at cycle 0, may leave at cycle 2.
        assert!(r.step(0, |_, _, _| true).is_empty());
        assert!(r.step(1, |_, _, _| true).is_empty());
        let grants = r.step(2, |_, _, _| true);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].output, PortId(1));
        assert_eq!(grants[0].flit.packet, PacketId(1));
        assert!(r.is_idle());
        assert_eq!(r.forwarded_flits(), 1);
        assert_eq!(r.forwarded_bits(), 32);
    }

    #[test]
    fn backpressure_blocks_flit() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(2, 2, 4));
        r.set_route_fn(fixed_route(1));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 9), 0)
            .unwrap();
        for c in 0..5 {
            assert!(r.step(c, |_, _, _| false).is_empty());
        }
        let grants = r.step(5, |_, _, _| true);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn wormhole_keeps_packet_contiguous_per_vc() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(3, 2, 8));
        r.set_route_fn(fixed_route(2));
        // 3-flit packet on VC 0 of port 0.
        r.accept(PortId(0), VcId(0), mk_flit(7, FlitKind::Head, 0, 3, 5), 0)
            .unwrap();
        r.accept(PortId(0), VcId(0), mk_flit(7, FlitKind::Body, 1, 3, 5), 1)
            .unwrap();
        r.accept(PortId(0), VcId(0), mk_flit(7, FlitKind::Tail, 2, 3, 5), 2)
            .unwrap();
        let mut seqs = Vec::new();
        for c in 0..12 {
            for g in r.step(c, |_, _, _| true) {
                seqs.push(g.flit.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2]);
        // After the tail left, the VC assignment is released.
        assert_eq!(
            r.input(PortId(0))
                .unwrap()
                .vc(VcId(0))
                .unwrap()
                .assigned_output(),
            None
        );
    }

    #[test]
    fn output_contention_is_serialised() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(3, 2, 4));
        r.set_route_fn(fixed_route(2));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 9), 0)
            .unwrap();
        r.accept(PortId(1), VcId(0), mk_flit(2, FlitKind::Single, 0, 1, 9), 0)
            .unwrap();
        let mut per_cycle = Vec::new();
        for c in 0..6 {
            per_cycle.push(r.step(c, |_, _, _| true).len());
        }
        // Only one flit per cycle can use output port 2.
        assert!(per_cycle.iter().all(|&n| n <= 1));
        assert_eq!(per_cycle.iter().sum::<usize>(), 2);
    }

    #[test]
    fn two_packets_to_distinct_outputs_flow_in_parallel() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(3, 2, 4));
        // Route by destination: even cores -> port 1, odd -> port 2.
        r.set_route_fn(Box::new(
            |dst| {
                if dst.0 % 2 == 0 {
                    PortId(1)
                } else {
                    PortId(2)
                }
            },
        ));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 2), 0)
            .unwrap();
        r.accept(PortId(1), VcId(0), mk_flit(2, FlitKind::Single, 0, 1, 3), 0)
            .unwrap();
        let grants = r.step(2, |_, _, _| true);
        assert_eq!(grants.len(), 2, "distinct outputs should both fire");
    }

    #[test]
    fn accept_rejects_when_buffer_full() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(2, 1, 1));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 1), 0)
            .unwrap();
        let err = r
            .accept(PortId(0), VcId(0), mk_flit(2, FlitKind::Single, 0, 1, 1), 0)
            .unwrap_err();
        assert!(matches!(
            err,
            NocError::BufferFull {
                port: PortId(0),
                ..
            }
        ));
        assert!(!r.can_accept(PortId(0), VcId(0)));
    }

    #[test]
    fn free_input_vc_reports_availability() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(2, 2, 1));
        assert_eq!(r.free_input_vc(PortId(0)), Some(VcId(0)));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Single, 0, 1, 1), 0)
            .unwrap();
        assert_eq!(r.free_input_vc(PortId(0)), Some(VcId(1)));
        r.accept(PortId(0), VcId(1), mk_flit(2, FlitKind::Single, 0, 1, 1), 0)
            .unwrap();
        assert_eq!(r.free_input_vc(PortId(0)), None);
    }

    #[test]
    fn buffered_bits_tracks_occupancy() {
        let mut r = ElectricalRouter::new(RouterId(0), RouterSpec::new(2, 2, 4));
        r.set_route_fn(fixed_route(1));
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Head, 0, 2, 9), 0)
            .unwrap();
        r.accept(PortId(0), VcId(0), mk_flit(1, FlitKind::Tail, 1, 2, 9), 0)
            .unwrap();
        assert_eq!(r.buffered_flits(), 2);
        assert_eq!(r.buffered_bits(), 64);
    }
}
