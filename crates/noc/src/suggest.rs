//! Name-suggestion helpers for the registries.
//!
//! Both process-global registries (architectures in `pnoc-sim`, traffic
//! patterns in `pnoc-traffic`) resolve entries by string name. When a name is
//! unknown, a bare "not found" is hostile: the caller typed `d-hetpnok` and
//! has no idea what the catalogue actually contains. This module provides the
//! shared pieces of a friendly failure: an edit-distance metric and a
//! "did you mean" picker over the registered names.

/// Levenshtein edit distance between two strings (unit costs), computed over
/// Unicode scalar values with a two-row dynamic program.
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitution
                .min(previous[j + 1] + 1) // deletion
                .min(current[j] + 1); // insertion
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// Picks the candidate closest to `target` by edit distance, if any candidate
/// is close enough to plausibly be a typo (distance ≤ max(target.len()/2, 2)).
/// Ties resolve to the earliest candidate, so passing a sorted catalogue gives
/// deterministic suggestions.
#[must_use]
pub fn nearest_name<'a, I>(target: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let threshold = (target.chars().count() / 2).max(2);
    let mut best: Option<(usize, &str)> = None;
    for candidate in candidates {
        let distance = edit_distance(target, candidate);
        if distance <= threshold && best.map(|(d, _)| distance < d).unwrap_or(true) {
            best = Some((distance, candidate));
        }
    }
    best.map(|(_, name)| name)
}

/// Renders the standard unknown-name message used by both registries:
/// the offending name, the sorted catalogue, and a "did you mean" hint when
/// a registered name is within typo distance.
#[must_use]
pub fn unknown_name_message(kind: &str, name: &str, registered: &[String]) -> String {
    let mut message = format!(
        "unknown {kind} '{name}'; registered: [{}]",
        registered.join(", ")
    );
    if let Some(suggestion) = nearest_name(name, registered.iter().map(String::as_str)) {
        message.push_str(&format!(" — did you mean '{suggestion}'?"));
    }
    message
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("tornado", "tornado"), 0);
        assert_eq!(edit_distance("tornado", "tornados"), 1);
    }

    #[test]
    fn nearest_name_finds_typos_and_rejects_nonsense() {
        let names = ["firefly", "d-hetpnoc", "uniform-fabric"];
        assert_eq!(nearest_name("d-hetpnok", names), Some("d-hetpnoc"));
        assert_eq!(nearest_name("firefly2", names), Some("firefly"));
        assert_eq!(nearest_name("warp-drive", names), None);
    }

    #[test]
    fn ties_resolve_to_the_earliest_candidate() {
        // "skewed-0" is distance 1 from every entry; sorted input makes the
        // suggestion deterministic.
        let names = ["skewed-1", "skewed-2", "skewed-3"];
        assert_eq!(nearest_name("skewed-0", names), Some("skewed-1"));
    }

    #[test]
    fn unknown_name_message_lists_and_suggests() {
        let registered = vec!["tornado".to_string(), "transpose".to_string()];
        let message = unknown_name_message("traffic pattern", "tornadoo", &registered);
        assert!(message.contains("unknown traffic pattern 'tornadoo'"));
        assert!(message.contains("tornado, transpose"));
        assert!(message.contains("did you mean 'tornado'?"));
        let message = unknown_name_message("traffic pattern", "xyzzy-quux", &registered);
        assert!(!message.contains("did you mean"));
    }
}
