//! Crossbar switch model.
//!
//! The routing/crossbar stage of the three-stage router connects granted
//! input ports to output ports for one cycle. The crossbar enforces the two
//! structural invariants of a physical crossbar: an input drives at most one
//! output per cycle, and an output is driven by at most one input per cycle.

use crate::ids::PortId;
use serde::{Deserialize, Serialize};

/// A single input→output connection established for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarGrant {
    /// Input port driving the connection.
    pub input: PortId,
    /// Output port being driven.
    pub output: PortId,
}

/// An `n × n` crossbar that records the connections established in the
/// current cycle and rejects conflicting ones.
#[derive(Debug, Clone)]
pub struct Crossbar {
    num_ports: usize,
    /// `output_for_input[i] = Some(o)` when input `i` drives output `o`.
    output_for_input: Vec<Option<PortId>>,
    /// `input_for_output[o] = Some(i)` when output `o` is driven by input `i`.
    input_for_output: Vec<Option<PortId>>,
    traversals: u64,
}

impl Crossbar {
    /// Creates a crossbar with `num_ports` inputs and outputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    #[must_use]
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "crossbar needs at least one port");
        Self {
            num_ports,
            output_for_input: vec![None; num_ports],
            input_for_output: vec![None; num_ports],
            traversals: 0,
        }
    }

    /// Number of ports.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Attempts to connect `input` to `output` for this cycle. Returns the
    /// grant on success or `None` when either endpoint is already in use.
    pub fn connect(&mut self, input: PortId, output: PortId) -> Option<CrossbarGrant> {
        assert!(input.0 < self.num_ports, "input port out of range");
        assert!(output.0 < self.num_ports, "output port out of range");
        if self.output_for_input[input.0].is_some() || self.input_for_output[output.0].is_some() {
            return None;
        }
        self.output_for_input[input.0] = Some(output);
        self.input_for_output[output.0] = Some(input);
        self.traversals += 1;
        Some(CrossbarGrant { input, output })
    }

    /// True when `output` is still free this cycle.
    #[must_use]
    pub fn output_free(&self, output: PortId) -> bool {
        self.input_for_output
            .get(output.0)
            .map(Option::is_none)
            .unwrap_or(false)
    }

    /// True when `input` is still free this cycle.
    #[must_use]
    pub fn input_free(&self, input: PortId) -> bool {
        self.output_for_input
            .get(input.0)
            .map(Option::is_none)
            .unwrap_or(false)
    }

    /// Clears every connection (call at the start of each cycle).
    pub fn clear(&mut self) {
        self.output_for_input.iter_mut().for_each(|v| *v = None);
        self.input_for_output.iter_mut().for_each(|v| *v = None);
    }

    /// Total connections established over the crossbar's lifetime (one per
    /// flit traversal). Used for switching-energy accounting.
    #[must_use]
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Current connections as `(input, output)` pairs.
    #[must_use]
    pub fn connections(&self) -> Vec<CrossbarGrant> {
        self.output_for_input
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.map(|output| CrossbarGrant {
                    input: PortId(i),
                    output,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_conflict_detection() {
        let mut xbar = Crossbar::new(4);
        assert!(xbar.connect(PortId(0), PortId(2)).is_some());
        // Same input cannot drive a second output.
        assert!(xbar.connect(PortId(0), PortId(3)).is_none());
        // Same output cannot be driven by a second input.
        assert!(xbar.connect(PortId(1), PortId(2)).is_none());
        // Disjoint connection succeeds.
        assert!(xbar.connect(PortId(1), PortId(3)).is_some());
        assert_eq!(xbar.connections().len(), 2);
    }

    #[test]
    fn clear_releases_connections() {
        let mut xbar = Crossbar::new(2);
        xbar.connect(PortId(0), PortId(1)).unwrap();
        assert!(!xbar.output_free(PortId(1)));
        xbar.clear();
        assert!(xbar.output_free(PortId(1)));
        assert!(xbar.input_free(PortId(0)));
        assert!(xbar.connect(PortId(0), PortId(1)).is_some());
    }

    #[test]
    fn traversal_counter_accumulates_across_clears() {
        let mut xbar = Crossbar::new(2);
        xbar.connect(PortId(0), PortId(1)).unwrap();
        xbar.clear();
        xbar.connect(PortId(1), PortId(0)).unwrap();
        assert_eq!(xbar.traversals(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let mut xbar = Crossbar::new(2);
        let _ = xbar.connect(PortId(5), PortId(0));
    }
}
