//! # pnoc-noc — electrical Network-on-Chip substrate
//!
//! This crate provides the electrical NoC building blocks used by the photonic
//! NoC architectures of the d-HetPNoC reproduction:
//!
//! * flit / packet representations with wormhole framing ([`flit`], [`packet`]),
//! * virtual-channel buffers with credit-style occupancy tracking ([`vc`]),
//! * round-robin and matrix arbiters ([`arbiter`]),
//! * a three-stage (input arbitration → routing/crossbar → output arbitration)
//!   electrical router ([`router`]) as described in the thesis (Section 3.3.2,
//!   adopted from Pande et al. [24]),
//! * pipelined point-to-point links ([`link`]),
//! * the hierarchical cluster topology used by both Firefly and d-HetPNoC
//!   (4 cores per cluster, all-to-all electrical links plus a photonic router
//!   per cluster, [`topology`]),
//! * routing helpers ([`routing`]) and
//! * the [`traffic_model::TrafficModel`] trait implemented by the
//!   `pnoc-traffic` crate.
//!
//! Everything in this crate is architecture-agnostic: it knows nothing about
//! photonics, wavelengths or bandwidth allocation. The photonic fabrics build
//! on top of these primitives.
//!
//! ## Example
//!
//! ```
//! use pnoc_noc::prelude::*;
//!
//! // A 5-port router (local core, three peers, photonic router) with
//! // 4 virtual channels of depth 8.
//! let spec = RouterSpec::new(5, 4, 8);
//! let topo = ClusterTopology::new(16, 4);
//! assert_eq!(topo.num_cores(), 64);
//! let router = ElectricalRouter::new(RouterId(0), spec);
//! assert_eq!(router.num_ports(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod crossbar;
pub mod error;
pub mod flit;
pub mod ids;
pub mod link;
pub mod packet;
pub mod router;
pub mod routing;
pub mod suggest;
pub mod topology;
pub mod traffic_model;
pub mod vc;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::arbiter::{Arbiter, MatrixArbiter, RoundRobinArbiter};
    pub use crate::crossbar::{Crossbar, CrossbarGrant};
    pub use crate::error::NocError;
    pub use crate::flit::{Flit, FlitKind, FlitPayload};
    pub use crate::ids::{ClusterId, CoreId, PacketId, PortId, RouterId, VcId};
    pub use crate::link::{Link, LinkSpec};
    pub use crate::packet::{BandwidthClass, Packet, PacketDescriptor, PacketFramer};
    pub use crate::router::{ElectricalRouter, OutputGrant, RouterSpec};
    pub use crate::routing::{ClusterRoutingTable, RouteDecision};
    pub use crate::topology::ClusterTopology;
    pub use crate::traffic_model::{OfferedLoad, TrafficModel};
    pub use crate::vc::{VcBuffer, VcSet};
}

pub use prelude::*;
