//! Routing inside a cluster.
//!
//! Because the intra-cluster fabric is all-to-all, routing is a single table
//! lookup: a destination in the same cluster is reached through the direct
//! peer link (or delivered locally), anything else leaves through the
//! photonic-router port.

use crate::ids::{CoreId, PortId};
use crate::topology::ClusterTopology;
use serde::{Deserialize, Serialize};

/// Outcome of a routing decision at a core switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteDecision {
    /// Deliver to the locally attached core (ejection).
    Local,
    /// Forward to a peer core switch inside the cluster through `PortId`.
    Peer(PortId),
    /// Forward to the cluster's photonic router for inter-cluster transfer.
    Photonic(PortId),
}

impl RouteDecision {
    /// The output port this decision corresponds to.
    #[must_use]
    pub fn port(&self, topology: &ClusterTopology) -> PortId {
        match self {
            RouteDecision::Local => topology.local_port(),
            RouteDecision::Peer(p) | RouteDecision::Photonic(p) => *p,
        }
    }
}

/// Per-switch routing table for the hierarchical cluster topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterRoutingTable {
    topology: ClusterTopology,
    own_core: CoreId,
}

impl ClusterRoutingTable {
    /// Builds the routing table of the switch attached to `own_core`.
    #[must_use]
    pub fn new(topology: ClusterTopology, own_core: CoreId) -> Self {
        Self { topology, own_core }
    }

    /// The core whose switch this table belongs to.
    #[must_use]
    pub fn own_core(&self) -> CoreId {
        self.own_core
    }

    /// Routes a packet headed for `dst`.
    #[must_use]
    pub fn decide(&self, dst: CoreId) -> RouteDecision {
        if dst == self.own_core {
            RouteDecision::Local
        } else if self.topology.same_cluster(self.own_core, dst) {
            RouteDecision::Peer(self.topology.peer_port(self.own_core, dst))
        } else {
            RouteDecision::Photonic(self.topology.photonic_port())
        }
    }

    /// Output port for a packet headed to `dst` (convenience wrapper around
    /// [`ClusterRoutingTable::decide`]).
    #[must_use]
    pub fn output_port(&self, dst: CoreId) -> PortId {
        self.decide(dst).port(&self.topology)
    }
}

/// Routing table of the electrical (ejection) side of a photonic router:
/// incoming photonic flits are forwarded to the core switch of the
/// destination core's local index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotonicEjectionRouting {
    topology: ClusterTopology,
}

impl PhotonicEjectionRouting {
    /// Creates the ejection routing helper.
    #[must_use]
    pub fn new(topology: ClusterTopology) -> Self {
        Self { topology }
    }

    /// Electrical output port of the photonic router for `dst`
    /// (i.e. the local index of `dst` within its cluster).
    #[must_use]
    pub fn output_port(&self, dst: CoreId) -> PortId {
        PortId(self.topology.local_index(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delivery() {
        let t = ClusterTopology::paper_default();
        let rt = ClusterRoutingTable::new(t, CoreId(9));
        assert_eq!(rt.decide(CoreId(9)), RouteDecision::Local);
        assert_eq!(rt.output_port(CoreId(9)), PortId(0));
    }

    #[test]
    fn intra_cluster_uses_peer_link() {
        let t = ClusterTopology::paper_default();
        let rt = ClusterRoutingTable::new(t, CoreId(9)); // cluster 2, local 1
        match rt.decide(CoreId(8)) {
            RouteDecision::Peer(p) => assert_eq!(p, PortId(1)),
            other => panic!("expected peer route, got {other:?}"),
        }
        match rt.decide(CoreId(11)) {
            RouteDecision::Peer(p) => assert_eq!(p, PortId(3)),
            other => panic!("expected peer route, got {other:?}"),
        }
    }

    #[test]
    fn inter_cluster_goes_photonic() {
        let t = ClusterTopology::paper_default();
        let rt = ClusterRoutingTable::new(t, CoreId(9));
        match rt.decide(CoreId(40)) {
            RouteDecision::Photonic(p) => assert_eq!(p, PortId(4)),
            other => panic!("expected photonic route, got {other:?}"),
        }
    }

    #[test]
    fn ejection_routing_targets_local_index() {
        let t = ClusterTopology::paper_default();
        let ej = PhotonicEjectionRouting::new(t);
        assert_eq!(ej.output_port(CoreId(13)), PortId(1));
        assert_eq!(ej.output_port(CoreId(16)), PortId(0));
        assert_eq!(ej.output_port(CoreId(63)), PortId(3));
    }

    #[test]
    fn every_destination_is_routable() {
        let t = ClusterTopology::paper_default();
        for own in t.cores() {
            let rt = ClusterRoutingTable::new(t, own);
            for dst in t.cores() {
                let port = rt.output_port(dst);
                assert!(port.0 < t.switch_ports());
            }
        }
    }
}
