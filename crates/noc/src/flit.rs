//! Flow-control units (flits).
//!
//! The thesis uses wormhole switching (Table 3-3): every packet is divided
//! into fixed-size flits; the *head* flit carries the routing information and
//! establishes the path, *body* flits follow, and the *tail* flit releases the
//! resources. Packets that fit in a single flit are represented by
//! [`FlitKind::Single`].

use crate::ids::{CoreId, PacketId, VcId};
use crate::packet::BandwidthClass;
use serde::{Deserialize, Serialize};

/// The position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Intermediate flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet; releases wormhole resources.
    Tail,
    /// A packet consisting of exactly one flit (head and tail at once).
    Single,
}

impl FlitKind {
    /// True for flits that carry routing information (head or single).
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// True for flits that terminate a packet (tail or single).
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// Optional payload classification. Data flits carry application payload;
/// control flits are used for reservation / token traffic by the photonic
/// layers built on top of this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitPayload {
    /// Ordinary application data.
    Data,
    /// Network-control information (reservation flits, token fragments, ...).
    Control,
}

/// A single flow-control unit travelling through the network.
///
/// Flits are intentionally small `Copy`-able values: the cycle-accurate inner
/// loop moves millions of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position of the flit within the packet.
    pub kind: FlitKind,
    /// Payload classification.
    pub payload: FlitPayload,
    /// Source core of the packet.
    pub src: CoreId,
    /// Destination core of the packet.
    pub dst: CoreId,
    /// Index of the flit within the packet (0 for the head flit).
    pub seq: u32,
    /// Total number of flits in the packet.
    pub packet_len: u32,
    /// Width of the flit in bits (32 / 128 / 256 in the paper's BW sets).
    pub bits: u32,
    /// Bandwidth class of the application flow this packet belongs to.
    pub class: BandwidthClass,
    /// Cycle at which the packet was created by the traffic generator.
    pub created_cycle: u64,
    /// Cycle at which the head flit entered the network (0 until injection).
    pub injected_cycle: u64,
    /// Virtual channel the flit is currently assigned to.
    pub vc: VcId,
}

impl Flit {
    /// Returns true if this flit is the head (or single) flit of its packet.
    #[must_use]
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// Returns true if this flit is the tail (or single) flit of its packet.
    #[must_use]
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }

    /// Network latency of this flit, measured from packet creation to `now`.
    #[must_use]
    pub fn latency_from_creation(&self, now: u64) -> u64 {
        now.saturating_sub(self.created_cycle)
    }

    /// Network latency of this flit, measured from injection to `now`.
    #[must_use]
    pub fn latency_from_injection(&self, now: u64) -> u64 {
        now.saturating_sub(self.injected_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CoreId, PacketId};

    fn flit(kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(1),
            kind,
            payload: FlitPayload::Data,
            src: CoreId(0),
            dst: CoreId(5),
            seq: 0,
            packet_len: 4,
            bits: 32,
            class: BandwidthClass::High,
            created_cycle: 10,
            injected_cycle: 12,
            vc: VcId(0),
        }
    }

    #[test]
    fn head_and_tail_predicates() {
        assert!(flit(FlitKind::Head).is_head());
        assert!(!flit(FlitKind::Head).is_tail());
        assert!(flit(FlitKind::Tail).is_tail());
        assert!(!flit(FlitKind::Tail).is_head());
        assert!(flit(FlitKind::Single).is_head());
        assert!(flit(FlitKind::Single).is_tail());
        assert!(!flit(FlitKind::Body).is_head());
        assert!(!flit(FlitKind::Body).is_tail());
    }

    #[test]
    fn latency_accessors() {
        let f = flit(FlitKind::Head);
        assert_eq!(f.latency_from_creation(30), 20);
        assert_eq!(f.latency_from_injection(30), 18);
        // Saturating behaviour: never negative.
        assert_eq!(f.latency_from_creation(5), 0);
    }
}
