//! Point-to-point pipelined links.
//!
//! Electrical links inside a cluster are short (the four cores of a cluster
//! and their photonic router are physically adjacent), so the paper models
//! them with a single cycle of traversal latency. The [`Link`] type is a
//! small delay pipeline: flits pushed in at cycle `t` become available at
//! cycle `t + latency`.

use crate::flit::Flit;
use crate::ids::VcId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Traversal latency in cycles (≥ 1).
    pub latency: u64,
    /// Physical width in bits (one flit per cycle regardless; the width is
    /// used by energy accounting).
    pub width_bits: u32,
}

impl LinkSpec {
    /// Creates a link spec.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    #[must_use]
    pub fn new(latency: u64, width_bits: u32) -> Self {
        assert!(latency >= 1, "link latency must be at least one cycle");
        Self {
            latency,
            width_bits,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self {
            latency: 1,
            width_bits: 32,
        }
    }
}

/// An in-flight flit annotated with the virtual channel it targets at the
/// receiving side and the cycle at which it becomes deliverable.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    ready_at: u64,
    flit: Flit,
    vc: VcId,
}

/// A unidirectional pipelined link.
#[derive(Debug, Clone)]
pub struct Link {
    spec: LinkSpec,
    pipeline: VecDeque<InFlight>,
    transferred_bits: u64,
}

impl Link {
    /// Creates an idle link.
    #[must_use]
    pub fn new(spec: LinkSpec) -> Self {
        Self {
            spec,
            pipeline: VecDeque::new(),
            transferred_bits: 0,
        }
    }

    /// Static link parameters.
    #[must_use]
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Pushes a flit into the link at `cycle`; it becomes deliverable at
    /// `cycle + latency`. At most one flit may be pushed per cycle; the caller
    /// (the router's output stage) guarantees this by construction, and the
    /// link asserts it in debug builds.
    pub fn send(&mut self, flit: Flit, vc: VcId, cycle: u64) {
        debug_assert!(
            self.pipeline
                .back()
                .map(|f| f.ready_at != cycle + self.spec.latency)
                .unwrap_or(true),
            "more than one flit pushed into a link in the same cycle"
        );
        self.transferred_bits += u64::from(flit.bits);
        self.pipeline.push_back(InFlight {
            ready_at: cycle + self.spec.latency,
            flit,
            vc,
        });
    }

    /// Returns the flit that completes traversal at `cycle`, if any, without
    /// removing it.
    #[must_use]
    pub fn peek_arrival(&self, cycle: u64) -> Option<(&Flit, VcId)> {
        self.pipeline
            .front()
            .filter(|f| f.ready_at <= cycle)
            .map(|f| (&f.flit, f.vc))
    }

    /// Removes and returns the flit completing traversal at `cycle`, if any.
    pub fn take_arrival(&mut self, cycle: u64) -> Option<(Flit, VcId)> {
        if self
            .pipeline
            .front()
            .map(|f| f.ready_at <= cycle)
            .unwrap_or(false)
        {
            self.pipeline.pop_front().map(|f| (f.flit, f.vc))
        } else {
            None
        }
    }

    /// Number of flits currently traversing the link.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pipeline.len()
    }

    /// Total bits ever pushed into this link (for energy accounting).
    #[must_use]
    pub fn transferred_bits(&self) -> u64 {
        self.transferred_bits
    }

    /// True when nothing is traversing the link.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pipeline.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitPayload};
    use crate::ids::{CoreId, PacketId};
    use crate::packet::BandwidthClass;

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(0),
            kind: FlitKind::Body,
            payload: FlitPayload::Data,
            src: CoreId(0),
            dst: CoreId(1),
            seq,
            packet_len: 8,
            bits: 32,
            class: BandwidthClass::Low,
            created_cycle: 0,
            injected_cycle: 0,
            vc: VcId(0),
        }
    }

    #[test]
    fn flit_arrives_after_latency() {
        let mut link = Link::new(LinkSpec::new(2, 32));
        link.send(flit(0), VcId(1), 10);
        assert!(link.take_arrival(10).is_none());
        assert!(link.take_arrival(11).is_none());
        let (f, vc) = link.take_arrival(12).unwrap();
        assert_eq!(f.seq, 0);
        assert_eq!(vc, VcId(1));
        assert!(link.is_idle());
    }

    #[test]
    fn flits_preserve_order() {
        let mut link = Link::new(LinkSpec::default());
        link.send(flit(0), VcId(0), 0);
        link.send(flit(1), VcId(0), 1);
        link.send(flit(2), VcId(0), 2);
        assert_eq!(link.in_flight(), 3);
        assert_eq!(link.take_arrival(1).unwrap().0.seq, 0);
        assert_eq!(link.take_arrival(2).unwrap().0.seq, 1);
        assert_eq!(link.take_arrival(3).unwrap().0.seq, 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut link = Link::new(LinkSpec::default());
        link.send(flit(7), VcId(0), 0);
        assert_eq!(link.peek_arrival(1).unwrap().0.seq, 7);
        assert_eq!(link.peek_arrival(1).unwrap().0.seq, 7);
        assert_eq!(link.take_arrival(1).unwrap().0.seq, 7);
        assert!(link.peek_arrival(2).is_none());
    }

    #[test]
    fn transferred_bits_accumulate() {
        let mut link = Link::new(LinkSpec::new(1, 32));
        link.send(flit(0), VcId(0), 0);
        link.send(flit(1), VcId(0), 1);
        assert_eq!(link.transferred_bits(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_panics() {
        let _ = LinkSpec::new(0, 32);
    }
}
