//! The interface between traffic generators and the cycle-accurate engine.
//!
//! Traffic models live in the `pnoc-traffic` crate; the simulation engine and
//! the photonic fabrics only see this trait. A traffic model is queried once
//! per core per cycle and may produce at most one new packet request; it also
//! exposes the *per-cluster-pair* bandwidth class and traffic volume share,
//! which the d-HetPNoC dynamic-bandwidth-allocation logic uses to populate
//! its demand tables (Section 3.2.1 of the thesis: the cores send demand
//! tables to their photonic router whenever the task mapping changes).

use crate::ids::{ClusterId, CoreId};
use crate::packet::{BandwidthClass, PacketDescriptor};
use serde::{Deserialize, Serialize};

/// Offered load, expressed as the probability that a core injects a new
/// packet in a given cycle (packets / core / cycle).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OfferedLoad(pub f64);

impl OfferedLoad {
    /// Zero load.
    pub const ZERO: OfferedLoad = OfferedLoad(0.0);

    /// Creates a load value, clamping to `[0, 1]`.
    #[must_use]
    pub fn new(packets_per_core_per_cycle: f64) -> Self {
        Self(packets_per_core_per_cycle.clamp(0.0, 1.0))
    }

    /// The raw packets-per-core-per-cycle value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// A source of packets for the cycle-accurate simulation.
pub trait TrafficModel {
    /// Asks the model whether core `src` creates a new packet at `cycle`.
    ///
    /// At most one packet per core per cycle is generated; the engine queues
    /// requests that cannot be injected immediately.
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor>;

    /// The offered load the model is currently configured for.
    fn offered_load(&self) -> OfferedLoad;

    /// Reconfigures the offered load (used by saturation sweeps).
    fn set_offered_load(&mut self, load: OfferedLoad);

    /// Bandwidth class of the application flow from cluster `src` to cluster
    /// `dst`. This is what the cores advertise in their demand tables.
    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass;

    /// Fraction of the traffic volume leaving cluster `src` that is destined
    /// to cluster `dst` (0..=1; the values for all `dst != src` sum to ≈ 1).
    /// d-HetPNoC uses this to weight its wavelength requests in proportion to
    /// the traffic requirement (Section 3.1).
    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64;

    /// Relative traffic intensity of cluster `src` compared to the chip
    /// average (mean ≈ 1.0 across clusters). Clusters running high-bandwidth
    /// applications communicate more frequently ("Traffic patterns with
    /// increasing skew demands a higher frequency of communication for high
    /// bandwidth applications", Section 3.4.1); this is the quantity the
    /// dynamic bandwidth allocation responds to.
    fn source_intensity(&self, _src: ClusterId) -> f64 {
        1.0
    }

    /// Human-readable name used in reports ("uniform-random", "skewed-3", ...).
    fn name(&self) -> String;

    /// The earliest future cycle (`> now`) at which this model could generate
    /// a packet, or `None` if it will never generate again. Consulted by the
    /// event-driven engine **only while the network is otherwise idle**, to
    /// decide how far the clock may fast-forward.
    ///
    /// The default — `Some(now + 1)` — is always safe and must be kept by
    /// models whose generation decision consumes RNG state per poll (they
    /// cannot look ahead without perturbing their stream). Only models with a
    /// deterministic release schedule (paced workload flows, periodic test
    /// generators) should override this; an override must guarantee that
    /// `next_packet` returns `None` for every core at every cycle strictly
    /// before the returned one, and that the skipped polls would not have
    /// mutated observable model state.
    fn next_generation_cycle(&self, now: u64) -> Option<u64> {
        Some(now + 1)
    }
}

/// Blanket implementation so that boxed traffic models can be used wherever a
/// concrete model is expected.
impl<T: TrafficModel + ?Sized> TrafficModel for Box<T> {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        (**self).next_packet(cycle, src)
    }

    fn offered_load(&self) -> OfferedLoad {
        (**self).offered_load()
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        (**self).set_offered_load(load);
    }

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        (**self).demand_class(src, dst)
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        (**self).volume_share(src, dst)
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        (**self).source_intensity(src)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn next_generation_cycle(&self, now: u64) -> Option<u64> {
        (**self).next_generation_cycle(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_is_clamped() {
        assert_eq!(OfferedLoad::new(-1.0).value(), 0.0);
        assert_eq!(OfferedLoad::new(0.25).value(), 0.25);
        assert_eq!(OfferedLoad::new(7.0).value(), 1.0);
    }

    /// A trivial model used to exercise the boxed blanket implementation.
    struct Constant {
        load: OfferedLoad,
    }

    impl TrafficModel for Constant {
        fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
            Some(PacketDescriptor {
                src,
                dst: CoreId(src.0 + 1),
                num_flits: 1,
                flit_bits: 32,
                class: BandwidthClass::Low,
                created_cycle: cycle,
            })
        }

        fn offered_load(&self) -> OfferedLoad {
            self.load
        }

        fn set_offered_load(&mut self, load: OfferedLoad) {
            self.load = load;
        }

        fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
            BandwidthClass::MediumHigh
        }

        fn volume_share(&self, _src: ClusterId, _dst: ClusterId) -> f64 {
            1.0 / 15.0
        }

        fn name(&self) -> String {
            "constant".to_string()
        }
    }

    #[test]
    fn boxed_models_delegate() {
        let mut boxed: Box<dyn TrafficModel> = Box::new(Constant {
            load: OfferedLoad::new(0.5),
        });
        assert_eq!(boxed.offered_load().value(), 0.5);
        boxed.set_offered_load(OfferedLoad::new(0.75));
        assert_eq!(boxed.offered_load().value(), 0.75);
        let pkt = boxed.next_packet(3, CoreId(1)).unwrap();
        assert_eq!(pkt.dst, CoreId(2));
        assert_eq!(pkt.created_cycle, 3);
        assert_eq!(boxed.name(), "constant");
        assert_eq!(
            boxed.demand_class(ClusterId(0), ClusterId(1)),
            BandwidthClass::MediumHigh
        );
        // Default lookahead: always the very next cycle.
        assert_eq!(boxed.next_generation_cycle(41), Some(42));
    }
}
