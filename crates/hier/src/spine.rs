//! The spine: a deterministic latency/bandwidth pipe between pods.
//!
//! Cross-pod packets do not traverse a modelled router network; the spine
//! serializes them in generation order at a fixed flit rate and delivers
//! every flit a fixed latency after its serialization slot. The queue is
//! unbounded, so oversubscription manifests as latency, never as drops —
//! the same lossless treatment the paper gives the photonic fabric.

use pnoc_noc::packet::PacketDescriptor;
use pnoc_sim::metrics::SimEvent;
use std::collections::BTreeMap;

/// Deterministic single-arbiter spine model.
///
/// The schedule is a pure function of the sequence of
/// [`Spine::transmit`] calls, which the hierarchy issues in the global
/// generation order (cycles ascending, cores ascending) — so the spine is
/// bitwise reproducible regardless of how the pods themselves execute.
#[derive(Debug, Clone)]
pub struct Spine {
    photonic: bool,
    latency: u64,
    flits_per_cycle: u64,
    /// Earliest cycle with remaining serialization capacity.
    cursor: u64,
    /// Flits already allocated at `cursor`.
    used: u64,
    peak_backlog: u64,
}

impl Spine {
    /// Creates a spine delivering flits `latency` cycles after their
    /// serialization slot, at `flits_per_cycle` flits per cycle.
    ///
    /// # Panics
    ///
    /// Panics on a zero flit rate (the spine could never drain).
    #[must_use]
    pub fn new(photonic: bool, latency: u64, flits_per_cycle: u64) -> Self {
        assert!(
            flits_per_cycle >= 1,
            "spine capacity must be at least one flit per cycle"
        );
        Self {
            photonic,
            latency,
            flits_per_cycle,
            cursor: 0,
            used: 0,
            peak_backlog: 0,
        }
    }

    /// Whether spine flits count as photonic in the delivery events.
    #[must_use]
    pub fn is_photonic(&self) -> bool {
        self.photonic
    }

    /// Schedules one cross-pod packet generated at `cycle`, appending every
    /// observable event of its lifetime into `events`, keyed by the cycle at
    /// which each event becomes visible. Serialization starts no earlier
    /// than `cycle + 1` (generation and first transmission never share a
    /// cycle, matching the leaf fabrics' inject-after-generate phasing).
    pub fn transmit(
        &mut self,
        cycle: u64,
        desc: &PacketDescriptor,
        events: &mut BTreeMap<u64, Vec<SimEvent>>,
    ) {
        events
            .entry(cycle)
            .or_default()
            .push(SimEvent::PacketGenerated { src: desc.src });
        if self.cursor <= cycle {
            self.cursor = cycle + 1;
            self.used = 0;
        }
        let mut last_slot = self.cursor;
        for flit in 0..desc.num_flits {
            if self.used >= self.flits_per_cycle {
                self.cursor += 1;
                self.used = 0;
            }
            let slot = self.cursor;
            self.used += 1;
            let at = events.entry(slot).or_default();
            if flit == 0 {
                at.push(SimEvent::PacketInjected { src: desc.src });
            }
            at.push(SimEvent::FlitInjected {
                src: desc.src,
                bits: desc.flit_bits,
            });
            events
                .entry(slot + self.latency)
                .or_default()
                .push(SimEvent::FlitDelivered {
                    src: desc.src,
                    dst: desc.dst,
                    bits: desc.flit_bits,
                    photonic: self.photonic,
                });
            last_slot = slot;
        }
        let delivered_at = last_slot + self.latency;
        events
            .entry(delivered_at)
            .or_default()
            .push(SimEvent::PacketDelivered {
                src: desc.src,
                dst: desc.dst,
                latency: delivered_at - desc.created_cycle,
            });
        self.peak_backlog = self.peak_backlog.max(self.cursor - cycle);
    }

    /// Peak serialization backlog (cycles between a packet's generation and
    /// the busy edge of the spine schedule) over the whole run.
    #[must_use]
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_noc::ids::CoreId;
    use pnoc_noc::packet::BandwidthClass;

    fn packet(src: usize, dst: usize, flits: u32, cycle: u64) -> PacketDescriptor {
        PacketDescriptor {
            src: CoreId(src),
            dst: CoreId(dst),
            num_flits: flits,
            flit_bits: 32,
            class: BandwidthClass::MediumHigh,
            created_cycle: cycle,
        }
    }

    fn delivered_latency(events: &BTreeMap<u64, Vec<SimEvent>>) -> Vec<u64> {
        let mut latencies = Vec::new();
        for per_cycle in events.values() {
            for event in per_cycle {
                if let SimEvent::PacketDelivered { latency, .. } = event {
                    latencies.push(*latency);
                }
            }
        }
        latencies
    }

    #[test]
    fn uncontended_packet_arrives_after_serialization_plus_latency() {
        let mut spine = Spine::new(false, 10, 4);
        let mut events = BTreeMap::new();
        // 8 flits at 4 flits/cycle serialize over cycles 1-2; the tail flit
        // lands at 2 + 10 = 12, so the latency is 12 - 0.
        spine.transmit(0, &packet(0, 64, 8, 0), &mut events);
        assert_eq!(delivered_latency(&events), vec![12]);
        let flits_delivered = events
            .values()
            .flatten()
            .filter(|e| matches!(e, SimEvent::FlitDelivered { .. }))
            .count();
        assert_eq!(flits_delivered, 8);
    }

    #[test]
    fn contention_is_latency_not_loss() {
        let mut fast = Spine::new(false, 0, 8);
        let mut slow = Spine::new(false, 0, 1);
        let (mut fast_events, mut slow_events) = (BTreeMap::new(), BTreeMap::new());
        for i in 0..4 {
            fast.transmit(0, &packet(i, 64 + i, 8, 0), &mut fast_events);
            slow.transmit(0, &packet(i, 64 + i, 8, 0), &mut slow_events);
        }
        let fast_latencies = delivered_latency(&fast_events);
        let slow_latencies = delivered_latency(&slow_events);
        assert_eq!(fast_latencies.len(), 4, "no packet is ever dropped");
        assert_eq!(slow_latencies.len(), 4, "no packet is ever dropped");
        assert!(slow_latencies.iter().max() > fast_latencies.iter().max());
        assert!(slow.peak_backlog() > fast.peak_backlog());
    }

    #[test]
    fn schedule_is_reproducible() {
        let run = || {
            let mut spine = Spine::new(true, 5, 2);
            let mut events = BTreeMap::new();
            for cycle in 0..32 {
                if cycle % 3 == 0 {
                    spine.transmit(cycle, &packet(1, 70, 4, cycle), &mut events);
                }
            }
            events
        };
        assert_eq!(run(), run());
    }
}
