//! The sharded hierarchical engine: per-pod leaf networks stepped as
//! `pnoc-exec` batch jobs with a boundary-exchange phase per epoch.
//!
//! See `hierarchy.md` (the crate docs) for the execution model. The short
//! version: the global traffic model is polled in the monolithic engine's
//! exact order, pod-local packets are fed to the owning pod, cross-pod
//! packets go through the [`Spine`], and every pod's events are replayed to
//! the engine's probes in pod-index order — a schedule that is a pure
//! function of the generation stream, so parallel and sequential pod
//! execution are bitwise identical.

use crate::spine::Spine;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use pnoc_sim::config::SimConfig;
use pnoc_sim::engine::CycleNetwork;
use pnoc_sim::metrics::{
    Counter, EventSink, Family, MetricReport, MetricValue, NullSink, QuantileSketch, SimEvent,
};
use pnoc_sim::registry::ArchitectureBuilder;
use pnoc_sim::stats::{LatencyHistogram, SimStats};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Buffered generator output for one pod: `(cycle, local core, descriptor)`
/// in the exact `(cycle, core)` order the pod will poll.
type Feed = VecDeque<(u64, usize, PacketDescriptor)>;

/// One pod: a leaf network plus its core-id offset into the global
/// numbering. Wrapped in a `Mutex` by the system so `pnoc_exec::run_batch`
/// — which hands out `&T` — can step pods mutably.
struct PodShard {
    network: Box<dyn CycleNetwork>,
    core_offset: usize,
}

/// Captures a pod's events with core ids lifted into the global numbering.
struct RecordingSink {
    core_offset: usize,
    events: Vec<(u64, SimEvent)>,
}

impl EventSink for RecordingSink {
    fn emit(&mut self, cycle: u64, event: SimEvent) {
        let up = |core: CoreId| CoreId(core.0 + self.core_offset);
        let lifted = match event {
            SimEvent::PacketGenerated { src } => SimEvent::PacketGenerated { src: up(src) },
            SimEvent::PacketDropped { src } => SimEvent::PacketDropped { src: up(src) },
            SimEvent::PacketInjected { src } => SimEvent::PacketInjected { src: up(src) },
            SimEvent::FlitInjected { src, bits } => SimEvent::FlitInjected { src: up(src), bits },
            SimEvent::FlitDelivered {
                src,
                dst,
                bits,
                photonic,
            } => SimEvent::FlitDelivered {
                src: up(src),
                dst: up(dst),
                bits,
                photonic,
            },
            SimEvent::PacketDelivered { src, dst, latency } => SimEvent::PacketDelivered {
                src: up(src),
                dst: up(dst),
                latency,
            },
            structural @ (SimEvent::FaultApplied { .. } | SimEvent::FaultRepaired { .. }) => {
                structural
            }
        };
        self.events.push((cycle, lifted));
    }
}

/// The traffic model a pod sees: an exact replay of the global generator's
/// decisions for this pod's cores, served from the feed the hierarchy fills
/// during the generate phase. Demand-table queries (`demand_class`,
/// `volume_share`, `source_intensity`) delegate to the global model with the
/// pod's cluster offset applied, so a leaf that samples its demand matrix
/// sees exactly its block of the global pattern.
struct PodFeedTraffic {
    feed: Arc<Mutex<Feed>>,
    global: Arc<Mutex<Box<dyn TrafficModel + Send>>>,
    cluster_offset: usize,
    load: OfferedLoad,
    name: String,
}

impl TrafficModel for PodFeedTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let mut feed = self.feed.lock().expect("pod feed poisoned");
        match feed.front() {
            Some(&(at, core, _)) if at == cycle && core == src.0 => {
                feed.pop_front().map(|(_, _, desc)| desc)
            }
            _ => None,
        }
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.global
            .lock()
            .expect("traffic model poisoned")
            .demand_class(
                ClusterId(src.0 + self.cluster_offset),
                ClusterId(dst.0 + self.cluster_offset),
            )
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        self.global
            .lock()
            .expect("traffic model poisoned")
            .volume_share(
                ClusterId(src.0 + self.cluster_offset),
                ClusterId(dst.0 + self.cluster_offset),
            )
    }

    fn source_intensity(&self, src: ClusterId) -> f64 {
        self.global
            .lock()
            .expect("traffic model poisoned")
            .source_intensity(ClusterId(src.0 + self.cluster_offset))
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn next_generation_cycle(&self, now: u64) -> Option<u64> {
        // Only the already-buffered feed counts: the hierarchy consults this
        // after a window, when the feed holds nothing beyond it, so an empty
        // feed means "idle until the hierarchy says otherwise".
        let feed = self.feed.lock().expect("pod feed poisoned");
        feed.iter()
            .find(|&&(at, _, _)| at > now)
            .map(|&(at, _, _)| at)
    }
}

/// Spine-side accounting for the measurement window, driven by replayed
/// spine events (and therefore reset together with the pods at
/// `begin_measurement`, exactly like a flat network's statistics).
struct SpineAccount {
    generated_packets: u64,
    injected_packets: u64,
    injected_flits: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    delivered_bits: u64,
    photonic_bits: u64,
    total_latency: u64,
    max_latency: u64,
    latency_histogram: LatencyHistogram,
    latency_sketch: QuantileSketch,
    pod_pair_packets: BTreeMap<String, u64>,
}

impl SpineAccount {
    fn new() -> Self {
        Self {
            generated_packets: 0,
            injected_packets: 0,
            injected_flits: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            delivered_bits: 0,
            photonic_bits: 0,
            total_latency: 0,
            max_latency: 0,
            // Same geometry as SimStats so the merged histogram stays valid.
            latency_histogram: LatencyHistogram::new(16, 256),
            latency_sketch: QuantileSketch::new(),
            pod_pair_packets: BTreeMap::new(),
        }
    }

    fn observe(&mut self, event: &SimEvent, leaf_cores: usize) {
        match *event {
            SimEvent::PacketGenerated { .. } => self.generated_packets += 1,
            SimEvent::PacketInjected { .. } => self.injected_packets += 1,
            SimEvent::FlitInjected { .. } => self.injected_flits += 1,
            SimEvent::FlitDelivered { bits, photonic, .. } => {
                self.delivered_flits += 1;
                self.delivered_bits += u64::from(bits);
                if photonic {
                    self.photonic_bits += u64::from(bits);
                }
            }
            SimEvent::PacketDelivered { src, dst, latency } => {
                self.delivered_packets += 1;
                self.total_latency += latency;
                self.max_latency = self.max_latency.max(latency);
                self.latency_histogram.record(latency);
                self.latency_sketch.record(latency);
                let label = pod_pair_label(src.0 / leaf_cores, dst.0 / leaf_cores);
                *self.pod_pair_packets.entry(label).or_insert(0) += 1;
            }
            SimEvent::PacketDropped { .. }
            | SimEvent::FaultApplied { .. }
            | SimEvent::FaultRepaired { .. } => {}
        }
    }
}

/// Label for one pod in the per-pod metric families (`p00`, `p01`, ...).
#[must_use]
pub fn pod_label(pod: usize) -> String {
    format!("p{pod:02}")
}

/// Label for a cross-pod pair in the spine traffic matrix (`p00->p01`).
#[must_use]
pub fn pod_pair_label(src: usize, dst: usize) -> String {
    format!("p{src:02}->p{dst:02}")
}

/// A hierarchy of leaf networks behind one [`CycleNetwork`] face.
///
/// Built by [`crate::HierArchitecture`]; construct directly only in tests.
pub struct HierarchicalSystem {
    config: SimConfig,
    pods: Vec<Mutex<PodShard>>,
    feeds: Vec<Arc<Mutex<Feed>>>,
    traffic: Arc<Mutex<Box<dyn TrafficModel + Send>>>,
    traffic_name: String,
    offered_load: OfferedLoad,
    leaf_cores: usize,
    epoch: u64,
    spine: Spine,
    /// Pod events awaiting replay, per cycle, pod-index order within a cycle.
    pod_events: BTreeMap<u64, Vec<SimEvent>>,
    /// Spine events awaiting replay, per cycle, generation order.
    spine_events: BTreeMap<u64, Vec<SimEvent>>,
    /// Cycles `[0, simulated_through)` have been simulated in the pods.
    simulated_through: u64,
    /// Whether any pod reported pending work at the last window boundary.
    pods_active: bool,
    account: SpineAccount,
    measured_cycles: u64,
}

impl HierarchicalSystem {
    /// Builds `pods` replicas of `leaf` (at its default parameters) under a
    /// spine, sharing one global traffic model.
    ///
    /// `config` is the **effective** configuration: its topology must be the
    /// leaf topology scaled by `pods` (see
    /// [`ArchitectureBuilder::effective_config`]).
    ///
    /// # Panics
    ///
    /// Panics when the effective cluster count is not divisible by `pods`,
    /// or when `pods` or `epoch` is zero.
    #[must_use]
    pub fn new(
        config: SimConfig,
        pods: usize,
        epoch: u64,
        spine: Spine,
        leaf: &dyn ArchitectureBuilder,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Self {
        assert!(pods >= 1, "a hierarchy needs at least one pod");
        assert!(
            epoch >= 1,
            "the boundary-exchange epoch must be at least one cycle"
        );
        let clusters = config.topology.num_clusters();
        assert!(
            clusters.is_multiple_of(pods),
            "effective cluster count {clusters} is not divisible by {pods} pods \
             (was the config passed through effective_config?)"
        );
        let mut leaf_config = config;
        leaf_config.topology = pnoc_noc::topology::ClusterTopology::new(
            clusters / pods,
            config.topology.cores_per_cluster(),
        );
        let leaf_cores = leaf_config.topology.num_cores();
        let leaf_clusters = leaf_config.topology.num_clusters();
        let traffic_name = traffic.name();
        let offered_load = traffic.offered_load();
        let shared = Arc::new(Mutex::new(traffic));
        let leaf_params = leaf.default_params();
        let mut shards = Vec::with_capacity(pods);
        let mut feeds = Vec::with_capacity(pods);
        for pod in 0..pods {
            let feed: Arc<Mutex<Feed>> = Arc::new(Mutex::new(VecDeque::new()));
            let proxy = PodFeedTraffic {
                feed: Arc::clone(&feed),
                global: Arc::clone(&shared),
                cluster_offset: pod * leaf_clusters,
                load: offered_load,
                name: traffic_name.clone(),
            };
            let network = leaf.build(leaf_config, &leaf_params, Box::new(proxy));
            shards.push(Mutex::new(PodShard {
                network,
                core_offset: pod * leaf_cores,
            }));
            feeds.push(feed);
        }
        Self {
            config,
            pods: shards,
            feeds,
            traffic: shared,
            traffic_name,
            offered_load,
            leaf_cores,
            epoch,
            spine,
            pod_events: BTreeMap::new(),
            spine_events: BTreeMap::new(),
            simulated_through: 0,
            pods_active: false,
            account: SpineAccount::new(),
            measured_cycles: 0,
        }
    }

    /// Number of pods.
    #[must_use]
    pub fn num_pods(&self) -> usize {
        self.pods.len()
    }

    /// Simulates the next window `[simulated_through, end)`, where `end` is
    /// an epoch away clamped to the warm-up and total-cycle boundaries (so
    /// `begin_measurement` always finds the pods exactly at the boundary).
    fn simulate_window(&mut self) {
        let start = self.simulated_through;
        let mut end = start + self.epoch;
        for boundary in [self.config.warmup_cycles, self.config.total_cycles()] {
            if start < boundary && boundary < end {
                end = boundary;
            }
        }
        // Generate: poll the global model for every (cycle, core) of the
        // window in the monolithic engine's exact order, so the generation
        // stream is independent of the pod decomposition.
        {
            let mut traffic = self.traffic.lock().expect("traffic model poisoned");
            let num_cores = self.config.topology.num_cores();
            for cycle in start..end {
                for core in 0..num_cores {
                    let Some(desc) = traffic.next_packet(cycle, CoreId(core)) else {
                        continue;
                    };
                    let src_pod = desc.src.0 / self.leaf_cores;
                    let dst_pod = desc.dst.0 / self.leaf_cores;
                    if src_pod == dst_pod {
                        let offset = src_pod * self.leaf_cores;
                        let local = PacketDescriptor {
                            src: CoreId(desc.src.0 - offset),
                            dst: CoreId(desc.dst.0 - offset),
                            ..desc
                        };
                        self.feeds[src_pod]
                            .lock()
                            .expect("pod feed poisoned")
                            .push_back((cycle, local.src.0, local));
                    } else {
                        self.spine.transmit(cycle, &desc, &mut self.spine_events);
                    }
                }
            }
        }
        // Step pods: one batch job per pod over the whole window. Pods are
        // independent, results come back in submission order, and each job
        // records its events locally — bitwise identical however many
        // workers the executor runs.
        let window = (start, end);
        let batches = pnoc_exec::run_batch(&self.pods, |_, pod| {
            let mut pod = pod.lock().expect("pod shard poisoned");
            let mut sink = RecordingSink {
                core_offset: pod.core_offset,
                events: Vec::new(),
            };
            for cycle in window.0..window.1 {
                pod.network.step_observed(cycle, &mut sink);
            }
            sink.events
        });
        // Exchange: merge in pod-index order so replay order within a cycle
        // is pods ascending (then spine, kept in its own buffer).
        for events in batches {
            for (cycle, event) in events {
                self.pod_events.entry(cycle).or_default().push(event);
            }
        }
        self.pods_active = self.pods.iter().any(|pod| {
            pod.lock()
                .expect("pod shard poisoned")
                .network
                .next_event_cycle(end - 1)
                .is_some()
        });
        self.simulated_through = end;
    }

    fn replay(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        if let Some(events) = self.pod_events.remove(&cycle) {
            for event in events {
                sink.emit(cycle, event);
            }
        }
        if let Some(events) = self.spine_events.remove(&cycle) {
            for event in events {
                self.account.observe(&event, self.leaf_cores);
                sink.emit(cycle, event);
            }
        }
    }
}

impl CycleNetwork for HierarchicalSystem {
    fn step(&mut self, cycle: u64) {
        self.step_observed(cycle, &mut NullSink);
    }

    fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        if cycle >= self.simulated_through {
            debug_assert_eq!(
                cycle, self.simulated_through,
                "the engine must not step past the simulated frontier"
            );
            self.simulate_window();
        }
        self.replay(cycle, sink);
        self.measured_cycles += 1;
    }

    fn begin_measurement(&mut self, cycle: u64) {
        debug_assert!(
            cycle == self.simulated_through,
            "window clamping must land the pods exactly on the measurement boundary"
        );
        for pod in &self.pods {
            pod.lock()
                .expect("pod shard poisoned")
                .network
                .begin_measurement(cycle);
        }
        self.account = SpineAccount::new();
        self.measured_cycles = 0;
    }

    fn stats(&self) -> SimStats {
        let mut merged = SimStats::new(
            "hier",
            &self.traffic_name,
            self.offered_load.value(),
            self.config.clock,
        );
        for pod in &self.pods {
            let stats = pod.lock().expect("pod shard poisoned").network.stats();
            merged.generated_packets += stats.generated_packets;
            merged.dropped_packets += stats.dropped_packets;
            merged.injected_packets += stats.injected_packets;
            merged.injected_flits += stats.injected_flits;
            merged.delivered_packets += stats.delivered_packets;
            merged.delivered_flits += stats.delivered_flits;
            merged.delivered_bits += stats.delivered_bits;
            merged.delivered_photonic_bits += stats.delivered_photonic_bits;
            merged.total_packet_latency += stats.total_packet_latency;
            merged.max_packet_latency = merged.max_packet_latency.max(stats.max_packet_latency);
            merged
                .latency_histogram
                .merge(&stats.latency_histogram)
                .expect("pod histograms share the default geometry");
            merged.energy = merged.energy.combined(&stats.energy);
        }
        let spine = &self.account;
        merged.generated_packets += spine.generated_packets;
        merged.injected_packets += spine.injected_packets;
        merged.injected_flits += spine.injected_flits;
        merged.delivered_packets += spine.delivered_packets;
        merged.delivered_flits += spine.delivered_flits;
        merged.delivered_bits += spine.delivered_bits;
        merged.delivered_photonic_bits += spine.photonic_bits;
        merged.total_packet_latency += spine.total_latency;
        merged.max_packet_latency = merged.max_packet_latency.max(spine.max_latency);
        merged
            .latency_histogram
            .merge(&spine.latency_histogram)
            .expect("spine histogram shares the default geometry");
        merged.measured_cycles = self.measured_cycles;
        merged
    }

    fn config(&self) -> &SimConfig {
        &self.config
    }

    fn architecture(&self) -> &str {
        "hier"
    }

    fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let consider = |candidate: u64, next: &mut Option<u64>| {
            *next = Some(next.map_or(candidate, |n| n.min(candidate)));
        };
        if let Some((&cycle, _)) = self.pod_events.range(now + 1..).next() {
            consider(cycle, &mut next);
        }
        if let Some((&cycle, _)) = self.spine_events.range(now + 1..).next() {
            consider(cycle, &mut next);
        }
        if self.pods_active {
            consider(self.simulated_through.max(now + 1), &mut next);
        } else if let Some(generation) = self
            .traffic
            .lock()
            .expect("traffic model poisoned")
            .next_generation_cycle(now)
        {
            consider(generation.max(now + 1), &mut next);
        }
        next
    }

    fn skip_cycles(&mut self, from: u64, to: u64) {
        self.measured_cycles += to - from;
        let start = from.max(self.simulated_through);
        if start < to {
            for pod in &self.pods {
                pod.lock()
                    .expect("pod shard poisoned")
                    .network
                    .skip_cycles(start, to);
            }
            self.simulated_through = to;
        }
    }

    fn contribute_metrics(&self, report: &mut MetricReport) {
        let mut generated = Family::<Counter>::new();
        let mut delivered = Family::<Counter>::new();
        let mut bits = Family::<Counter>::new();
        let mut dropped = Family::<Counter>::new();
        for (index, pod) in self.pods.iter().enumerate() {
            let stats = pod.lock().expect("pod shard poisoned").network.stats();
            let label = pod_label(index);
            generated
                .with_label(label.clone())
                .add(stats.generated_packets);
            delivered
                .with_label(label.clone())
                .add(stats.delivered_packets);
            bits.with_label(label.clone()).add(stats.delivered_bits);
            dropped.with_label(label).add(stats.dropped_packets);
        }
        report.insert("pod_generated_packets", generated.to_value());
        report.insert("pod_delivered_packets", delivered.to_value());
        report.insert("pod_delivered_bits", bits.to_value());
        report.insert("pod_dropped_packets", dropped.to_value());
        report.insert(
            "cross_pod_packets",
            MetricValue::Counter(self.account.generated_packets),
        );
        report.insert(
            "spine_packets",
            MetricValue::Counter(self.account.delivered_packets),
        );
        report.insert(
            "spine_flits",
            MetricValue::Counter(self.account.delivered_flits),
        );
        report.insert(
            "spine_bits",
            MetricValue::Counter(self.account.delivered_bits),
        );
        report.insert(
            "spine_latency_cycles",
            MetricValue::Histogram(self.account.latency_sketch.clone()),
        );
        report.insert(
            "spine_backlog_cycles",
            MetricValue::Gauge(self.spine.peak_backlog() as f64),
        );
        let mut pairs = Family::<Counter>::new();
        for (label, count) in &self.account.pod_pair_packets {
            pairs.with_label(label.clone()).add(*count);
        }
        report.insert("pod_pair_packets", pairs.to_value());
    }
}

/// Metric names only the hierarchy contributes — a helper for comparisons
/// that want to line a hierarchy report up against a flat network's (the
/// `pods=1` degeneracy tests strip these before the bitwise diff).
pub const HIER_ONLY_METRICS: [&str; 11] = [
    "pod_generated_packets",
    "pod_delivered_packets",
    "pod_delivered_bits",
    "pod_dropped_packets",
    "cross_pod_packets",
    "spine_packets",
    "spine_flits",
    "spine_bits",
    "spine_latency_cycles",
    "spine_backlog_cycles",
    "pod_pair_packets",
];
