#![doc = include_str!("hierarchy.md")]

pub mod spine;
pub mod system;

pub use spine::Spine;
pub use system::{pod_label, pod_pair_label, HierarchicalSystem, HIER_ONLY_METRICS};

use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::TrafficModel;
use pnoc_sim::config::SimConfig;
use pnoc_sim::engine::CycleNetwork;
use pnoc_sim::params::{ParamSchema, ResolvedParams};
use pnoc_sim::registry::{
    lookup_architecture, register_architecture, ArchitectureBuilder, Provisioning,
};
use std::sync::Arc;

/// Leaf fabrics a pod can run. The choice set is closed because
/// architecture-parameter specs are flat (no nested braces) — each entry
/// names a registered architecture that runs at its default parameters.
pub const LEAF_ARCHITECTURES: [&str; 3] = ["d-hetpnoc", "firefly", "uniform-fabric"];

/// The registered `hier` architecture: `pods` replicas of a registered leaf
/// fabric composed under an electrical or photonic spine. See the crate
/// docs for the spec grammar and execution model.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierArchitecture;

impl HierArchitecture {
    /// Resolves the `epoch` parameter: `0` means auto — one cycle for a
    /// single pod (exact degeneracy to the bare leaf), 64 otherwise.
    #[must_use]
    pub fn resolve_epoch(epoch: i64, pods: usize) -> u64 {
        match epoch {
            0 if pods == 1 => 1,
            0 => 64,
            n => n as u64,
        }
    }
}

impl ArchitectureBuilder for HierArchitecture {
    fn name(&self) -> &str {
        "hier"
    }

    fn label(&self) -> String {
        "Hierarchical multi-pod composition".to_string()
    }

    fn provisioning(&self) -> Provisioning {
        Provisioning::Dynamic
    }

    fn param_schema(&self) -> ParamSchema {
        ParamSchema::new()
            .int(
                "pods",
                4,
                1,
                64,
                "number of leaf-fabric pods composed under the spine",
            )
            .choice(
                "leaf",
                "d-hetpnoc",
                &LEAF_ARCHITECTURES,
                "leaf fabric replicated in every pod (runs at its default parameters)",
            )
            .int(
                "epoch",
                0,
                0,
                4096,
                "boundary-exchange epoch in cycles (0 = auto: 1 for a single pod, 64 otherwise)",
            )
            .choice(
                "spine",
                "electrical",
                &["electrical", "photonic"],
                "spine link technology (photonic counts cross-pod bits as photonic)",
            )
            .int(
                "spine_latency",
                32,
                0,
                100_000,
                "one-way spine traversal latency in cycles",
            )
            .int(
                "spine_bandwidth",
                0,
                0,
                65_536,
                "spine capacity in flits per cycle before oversubscription \
                 (0 = auto: one packet's flits per cycle)",
            )
            .float(
                "spine_oversub",
                1.0,
                1.0,
                64.0,
                "spine oversubscription divisor; effective capacity = bandwidth / oversub",
            )
    }

    fn effective_config(&self, config: SimConfig, params: &ResolvedParams) -> SimConfig {
        let pods = params.int("pods") as usize;
        let mut effective = config;
        effective.topology = ClusterTopology::new(
            config.topology.num_clusters() * pods,
            config.topology.cores_per_cluster(),
        );
        effective
    }

    fn workload_placement(
        &self,
        config: &SimConfig,
        params: &ResolvedParams,
        ranks: usize,
    ) -> Option<Vec<usize>> {
        let pods = params.int("pods") as usize;
        if pods <= 1 {
            return None;
        }
        // Round-robin ranks across pods: rank i on core (i mod P)·Nc + ⌊i/P⌋,
        // so dense collectives stripe over every pod and exercise the spine.
        let leaf_cores = config.topology.num_cores() / pods;
        Some(
            (0..ranks)
                .map(|rank| (rank % pods) * leaf_cores + rank / pods)
                .collect(),
        )
    }

    fn build(
        &self,
        config: SimConfig,
        params: &ResolvedParams,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Box<dyn CycleNetwork> {
        let pods = params.int("pods") as usize;
        let leaf_name = params.choice("leaf");
        let leaf = lookup_architecture(leaf_name)
            .unwrap_or_else(|error| panic!("hier leaf '{leaf_name}' is not registered: {error}"));
        let epoch = Self::resolve_epoch(params.int("epoch"), pods);
        let bandwidth = match params.int("spine_bandwidth") {
            0 => u64::from(config.bandwidth_set.packet_flits()),
            n => n as u64,
        };
        let capacity = ((bandwidth as f64 / params.float("spine_oversub")).floor() as u64).max(1);
        let spine = Spine::new(
            params.choice("spine") == "photonic",
            params.int("spine_latency") as u64,
            capacity,
        );
        Box::new(HierarchicalSystem::new(
            config,
            pods,
            epoch,
            spine,
            leaf.as_ref(),
            traffic,
        ))
    }
}

/// Registers the `hier` architecture into the process-global registry.
/// Idempotent (re-registration replaces the builder with an equivalent one).
pub fn register_hier_architecture() {
    register_architecture(Arc::new(HierArchitecture));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::config::BandwidthSet;
    use pnoc_sim::params::ArchParams;

    fn resolved(overrides: ArchParams) -> ResolvedParams {
        HierArchitecture
            .param_schema()
            .validate("hier", &overrides)
            .expect("valid overrides")
    }

    #[test]
    fn schema_declares_the_seven_hierarchy_knobs() {
        let schema = HierArchitecture.param_schema();
        assert_eq!(schema.len(), 7);
        let defaults = HierArchitecture.default_params();
        assert_eq!(defaults.int("pods"), 4);
        assert_eq!(defaults.choice("leaf"), "d-hetpnoc");
        assert_eq!(defaults.int("epoch"), 0);
        assert_eq!(defaults.choice("spine"), "electrical");
        assert_eq!(defaults.int("spine_latency"), 32);
        assert_eq!(defaults.int("spine_bandwidth"), 0);
        assert!((defaults.float("spine_oversub") - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn effective_config_multiplies_clusters_by_pods() {
        let base = SimConfig::paper_default(BandwidthSet::Set1);
        let params = resolved(ArchParams::new().set("pods", 16));
        let effective = HierArchitecture.effective_config(base, &params);
        assert_eq!(
            effective.topology.num_clusters(),
            base.topology.num_clusters() * 16
        );
        assert_eq!(
            effective.topology.cores_per_cluster(),
            base.topology.cores_per_cluster()
        );
        assert_eq!(effective.bandwidth_set, base.bandwidth_set);
        assert_eq!(effective.seed, base.seed);

        // A single pod leaves the geometry untouched.
        let one = resolved(ArchParams::new().set("pods", 1));
        let degenerate = HierArchitecture.effective_config(base, &one);
        assert_eq!(
            degenerate.topology.num_clusters(),
            base.topology.num_clusters()
        );
    }

    #[test]
    fn placement_round_robins_ranks_across_pods() {
        let base = SimConfig::paper_default(BandwidthSet::Set1);
        let params = resolved(ArchParams::new().set("pods", 4));
        let effective = HierArchitecture.effective_config(base, &params);
        let leaf_cores = effective.topology.num_cores() / 4;
        let map = HierArchitecture
            .workload_placement(&effective, &params, 8)
            .expect("multi-pod hierarchies place ranks");
        assert_eq!(map.len(), 8);
        // Ranks 0..4 land on core 0 of pods 0..4; ranks 4..8 on core 1.
        for (rank, &core) in map.iter().enumerate() {
            assert_eq!(core, (rank % 4) * leaf_cores + rank / 4);
        }
        // Injective over a full-fabric workload.
        let full = HierArchitecture
            .workload_placement(&effective, &params, effective.topology.num_cores())
            .expect("full-size map");
        let mut seen = vec![false; effective.topology.num_cores()];
        for &core in &full {
            assert!(
                !std::mem::replace(&mut seen[core], true),
                "core {core} placed twice"
            );
        }

        // A single pod keeps the generators' native dense placement.
        let one = resolved(ArchParams::new().set("pods", 1));
        let degenerate = HierArchitecture.effective_config(base, &one);
        assert!(HierArchitecture
            .workload_placement(&degenerate, &one, 8)
            .is_none());
    }

    #[test]
    fn epoch_auto_resolves_to_exact_degeneracy_for_one_pod() {
        assert_eq!(HierArchitecture::resolve_epoch(0, 1), 1);
        assert_eq!(HierArchitecture::resolve_epoch(0, 4), 64);
        assert_eq!(HierArchitecture::resolve_epoch(128, 1), 128);
        assert_eq!(HierArchitecture::resolve_epoch(128, 4), 128);
    }
}
