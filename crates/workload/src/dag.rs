//! The [`Workload`] DAG: a named, validated set of dependent flows.

use crate::flow::{Flow, FlowId};
use pnoc_noc::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A named DAG of [`Flow`]s — the unit of closed-loop execution.
///
/// Construction is additive ([`Workload::add`] / [`Workload::add_flow`]);
/// [`Workload::validate`] checks the structural invariants the closed-loop
/// driver relies on (see [`WorkloadValidationError`]). The generators in
/// [`crate::collectives`] and the trace loader in [`crate::trace`] only
/// produce validated workloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    flows: Vec<Flow>,
}

impl Workload {
    /// Creates an empty workload.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            flows: Vec::new(),
        }
    }

    /// The workload's name (used in reports and batch dedup keys).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The flows, in id order.
    #[must_use]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the workload has no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Appends a dependency-free flow and returns its id (chain
    /// [`Flow::after`]-style edits through [`Workload::add_flow`] when
    /// dependencies are needed).
    pub fn add(&mut self, src: CoreId, dst: CoreId, bytes: u64) -> FlowId {
        let id = FlowId(self.flows.len());
        self.flows.push(Flow::new(id, src, dst, bytes));
        id
    }

    /// Appends a fully built flow and returns its id. The flow's `id` field
    /// is overwritten with its actual index.
    pub fn add_flow(&mut self, mut flow: Flow) -> FlowId {
        let id = FlowId(self.flows.len());
        flow.id = id;
        self.flows.push(flow);
        id
    }

    /// Sum of all flow payloads, bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Total packets on the wire when packets carry `packet_bits` bits.
    #[must_use]
    pub fn total_packets(&self, packet_bits: u64) -> u64 {
        self.flows.iter().map(|f| f.packets(packet_bits)).sum()
    }

    /// The highest core index any flow touches, `None` when empty. The
    /// driver requires this to be below the topology's core count.
    #[must_use]
    pub fn max_core(&self) -> Option<usize> {
        self.flows.iter().map(|f| f.src.0.max(f.dst.0)).max()
    }

    /// Re-places the workload onto different cores: every flow endpoint
    /// `CoreId(i)` becomes `CoreId(map[i])`. The name, payload sizes,
    /// dependencies, release cycles and collective labels are untouched, so
    /// the remapped workload is the same DAG running on a different set of
    /// cores — how an architecture spreads a dense rank-on-core-`i`
    /// collective over its topology (e.g. round-robin across pods).
    ///
    /// An injective map preserves every [`Workload::validate`] invariant
    /// (in particular `src != dst`).
    ///
    /// # Panics
    ///
    /// Panics if a flow endpoint is not covered by the map.
    #[must_use]
    pub fn remap_cores(&self, map: &[usize]) -> Workload {
        let place = |core: CoreId| {
            CoreId(*map.get(core.0).unwrap_or_else(|| {
                panic!(
                    "placement map covers {} ranks but the workload touches core {}",
                    map.len(),
                    core.0
                )
            }))
        };
        let flows = self
            .flows
            .iter()
            .map(|flow| {
                let mut flow = flow.clone();
                flow.src = place(flow.src);
                flow.dst = place(flow.dst);
                flow
            })
            .collect();
        Workload {
            name: self.name.clone(),
            flows,
        }
    }

    /// The distinct collective labels, sorted.
    #[must_use]
    pub fn collectives(&self) -> Vec<String> {
        let labels: BTreeSet<&str> = self.flows.iter().map(|f| f.collective.as_str()).collect();
        labels.into_iter().map(str::to_string).collect()
    }

    /// Checks every structural invariant the closed-loop driver relies on:
    /// flow ids equal their indices, dependencies are in range and not
    /// self-referential, transfers are non-empty, `src != dst`, and the
    /// dependency graph is acyclic (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`WorkloadValidationError`].
    pub fn validate(&self) -> Result<(), WorkloadValidationError> {
        for (index, flow) in self.flows.iter().enumerate() {
            if flow.id.0 != index {
                return Err(WorkloadValidationError::IdMismatch { index, id: flow.id });
            }
            if flow.bytes == 0 {
                return Err(WorkloadValidationError::EmptyFlow { flow: flow.id });
            }
            if flow.src == flow.dst {
                return Err(WorkloadValidationError::SelfLoop {
                    flow: flow.id,
                    core: flow.src,
                });
            }
            for &dep in &flow.deps {
                if dep.0 >= self.flows.len() {
                    return Err(WorkloadValidationError::UnknownDependency {
                        flow: flow.id,
                        dep,
                        flows: self.flows.len(),
                    });
                }
                if dep == flow.id {
                    return Err(WorkloadValidationError::SelfDependency { flow: flow.id });
                }
            }
        }
        // Kahn's algorithm: if a topological order covers every flow, the
        // graph is acyclic.
        let mut indegree: Vec<usize> = self.flows.iter().map(|f| f.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.flows.len()];
        for flow in &self.flows {
            for &dep in &flow.deps {
                dependents[dep.0].push(flow.id.0);
            }
        }
        let mut frontier: Vec<usize> = (0..self.flows.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(next) = frontier.pop() {
            visited += 1;
            for &dependent in &dependents[next] {
                indegree[dependent] -= 1;
                if indegree[dependent] == 0 {
                    frontier.push(dependent);
                }
            }
        }
        if visited != self.flows.len() {
            return Err(WorkloadValidationError::Cycle {
                stuck: self.flows.len() - visited,
            });
        }
        Ok(())
    }
}

/// Why a [`Workload`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadValidationError {
    /// A flow's id does not equal its index in the flow list.
    IdMismatch {
        /// Actual index in the list.
        index: usize,
        /// The id the flow carries.
        id: FlowId,
    },
    /// A flow transfers zero bytes.
    EmptyFlow {
        /// The offending flow.
        flow: FlowId,
    },
    /// A flow's source equals its destination.
    SelfLoop {
        /// The offending flow.
        flow: FlowId,
        /// The core it loops on.
        core: CoreId,
    },
    /// A dependency references a flow id outside the workload.
    UnknownDependency {
        /// The flow carrying the dangling dependency.
        flow: FlowId,
        /// The dangling dependency.
        dep: FlowId,
        /// Number of flows in the workload.
        flows: usize,
    },
    /// A flow depends on itself.
    SelfDependency {
        /// The offending flow.
        flow: FlowId,
    },
    /// The dependency graph contains a cycle.
    Cycle {
        /// Number of flows that cannot be topologically ordered.
        stuck: usize,
    },
}

impl std::fmt::Display for WorkloadValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadValidationError::IdMismatch { index, id } => {
                write!(f, "flow at index {index} carries id {id}")
            }
            WorkloadValidationError::EmptyFlow { flow } => {
                write!(f, "flow {flow} transfers zero bytes")
            }
            WorkloadValidationError::SelfLoop { flow, core } => {
                write!(f, "flow {flow} sends core {} to itself", core.0)
            }
            WorkloadValidationError::UnknownDependency { flow, dep, flows } => write!(
                f,
                "flow {flow} depends on {dep}, but the workload has only {flows} flows"
            ),
            WorkloadValidationError::SelfDependency { flow } => {
                write!(f, "flow {flow} depends on itself")
            }
            WorkloadValidationError::Cycle { stuck } => write!(
                f,
                "dependency graph has a cycle ({stuck} flows cannot be ordered)"
            ),
        }
    }
}

impl std::error::Error for WorkloadValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;

    #[test]
    fn add_assigns_sequential_ids_and_totals_accumulate() {
        let mut w = Workload::new("test");
        assert!(w.is_empty());
        let a = w.add(CoreId(0), CoreId(1), 100);
        let b = w.add(CoreId(1), CoreId(2), 200);
        assert_eq!((a, b), (FlowId(0), FlowId(1)));
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_bytes(), 300);
        assert_eq!(w.max_core(), Some(2));
        assert_eq!(w.total_packets(2048), 2);
        w.validate().expect("valid");
    }

    #[test]
    fn add_flow_overwrites_the_id() {
        let mut w = Workload::new("test");
        let id = w.add_flow(Flow::new(FlowId(99), CoreId(0), CoreId(1), 8).in_collective("x"));
        assert_eq!(id, FlowId(0));
        assert_eq!(w.flows()[0].id, FlowId(0));
        assert_eq!(w.collectives(), vec!["x".to_string()]);
    }

    #[test]
    fn validation_rejects_each_invariant_violation() {
        let mut self_loop = Workload::new("t");
        self_loop.add(CoreId(3), CoreId(3), 8);
        assert!(matches!(
            self_loop.validate(),
            Err(WorkloadValidationError::SelfLoop { .. })
        ));

        let mut empty = Workload::new("t");
        empty.add(CoreId(0), CoreId(1), 0);
        assert!(matches!(
            empty.validate(),
            Err(WorkloadValidationError::EmptyFlow { .. })
        ));

        let mut dangling = Workload::new("t");
        dangling.add_flow(Flow::new(FlowId(0), CoreId(0), CoreId(1), 8).after(FlowId(7)));
        assert!(matches!(
            dangling.validate(),
            Err(WorkloadValidationError::UnknownDependency { .. })
        ));

        let mut selfdep = Workload::new("t");
        selfdep.add_flow(Flow::new(FlowId(0), CoreId(0), CoreId(1), 8).after(FlowId(0)));
        assert!(matches!(
            selfdep.validate(),
            Err(WorkloadValidationError::SelfDependency { .. })
        ));

        // A two-flow cycle: 0 → 1 → 0.
        let mut cyclic = Workload::new("t");
        cyclic.add_flow(Flow::new(FlowId(0), CoreId(0), CoreId(1), 8).after(FlowId(1)));
        cyclic.add_flow(Flow::new(FlowId(1), CoreId(1), CoreId(2), 8).after(FlowId(0)));
        let error = cyclic.validate().expect_err("cycle");
        assert!(matches!(error, WorkloadValidationError::Cycle { stuck: 2 }));
        assert!(error.to_string().contains("cycle"));
    }

    #[test]
    fn diamond_dependencies_are_acyclic() {
        // 0 → {1, 2} → 3.
        let mut w = Workload::new("diamond");
        let root = w.add(CoreId(0), CoreId(1), 8);
        let left = w.add_flow(Flow::new(FlowId(0), CoreId(1), CoreId(2), 8).after(root));
        let right = w.add_flow(Flow::new(FlowId(0), CoreId(1), CoreId(3), 8).after(root));
        w.add_flow(
            Flow::new(FlowId(0), CoreId(2), CoreId(0), 8)
                .after(left)
                .after(right),
        );
        w.validate().expect("diamond is a DAG");
    }
}
