//! Trace replay: loading a [`Workload`] from JSONL.
//!
//! One flow per line, as a flat JSON object:
//!
//! ```text
//! {"src":0,"dst":4,"bytes":4096}
//! {"src":4,"dst":0,"bytes":4096,"deps":[0],"release":100,"collective":"reply"}
//! ```
//!
//! `src`, `dst` and `bytes` are required; `deps` (array of earlier line
//! numbers, 0-based), `release` (earliest start cycle) and `collective`
//! (phase label, defaults to `"trace"`) are optional. Blank lines and lines
//! starting with `#` are skipped. The workspace builds offline with a no-op
//! `serde` shim, so the parser here is a small hand-rolled one restricted to
//! exactly this schema; errors carry the 1-based line number.

use crate::dag::Workload;
use crate::flow::{Flow, FlowId};
use pnoc_noc::ids::CoreId;

/// Why a trace file could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 for whole-file errors).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace: {}", self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed flow line before assembly into the workload.
#[derive(Debug, Default)]
struct TraceLine {
    src: Option<u64>,
    dst: Option<u64>,
    bytes: Option<u64>,
    deps: Vec<u64>,
    release: u64,
    collective: Option<String>,
}

/// Character-level cursor over one line.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest.chars().next()
    }

    fn eat(&mut self, expected: char) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == expected => {
                self.rest = &self.rest[expected.len_utf8()..];
                Ok(())
            }
            Some(c) => Err(format!("expected '{expected}', found '{c}'")),
            None => Err(format!("expected '{expected}', found end of line")),
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: usize = self.rest.chars().take_while(char::is_ascii_digit).count();
        if digits == 0 {
            return Err("expected a non-negative integer".to_string());
        }
        let (number, rest) = self.rest.split_at(digits);
        self.rest = rest;
        number
            .parse::<u64>()
            .map_err(|_| format!("integer '{number}' overflows u64"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let Some((index, c)) = chars.next() else {
                return Err("unterminated string".to_string());
            };
            match c {
                '"' => {
                    self.rest = &self.rest[index + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, escaped)) = chars.next() else {
                        return Err("unterminated escape".to_string());
                    };
                    match escaped {
                        '"' | '\\' | '/' => out.push(escaped),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

fn parse_line(text: &str) -> Result<TraceLine, String> {
    let mut cursor = Cursor::new(text);
    let mut line = TraceLine::default();
    cursor.eat('{')?;
    if cursor.peek() == Some('}') {
        return Err("flow object is empty".to_string());
    }
    loop {
        let key = cursor.parse_string()?;
        cursor.eat(':')?;
        match key.as_str() {
            "src" => line.src = Some(cursor.parse_u64()?),
            "dst" => line.dst = Some(cursor.parse_u64()?),
            "bytes" => line.bytes = Some(cursor.parse_u64()?),
            "release" => line.release = cursor.parse_u64()?,
            "collective" => line.collective = Some(cursor.parse_string()?),
            "deps" => {
                cursor.eat('[')?;
                if cursor.peek() != Some(']') {
                    loop {
                        line.deps.push(cursor.parse_u64()?);
                        if cursor.peek() == Some(',') {
                            cursor.eat(',')?;
                        } else {
                            break;
                        }
                    }
                }
                cursor.eat(']')?;
            }
            other => return Err(format!("unknown field '{other}'")),
        }
        match cursor.peek() {
            Some(',') => cursor.eat(',')?,
            _ => break,
        }
    }
    cursor.eat('}')?;
    if cursor.peek().is_some() {
        return Err("trailing characters after the flow object".to_string());
    }
    Ok(line)
}

/// Parses a JSONL trace into a validated [`Workload`] named `name`.
///
/// # Errors
///
/// Returns a line-numbered [`TraceError`] on syntax errors, missing
/// required fields, or a workload that fails
/// [`Workload::validate`](crate::dag::Workload::validate) (dangling
/// dependencies, cycles, self-loops, empty flows).
pub fn parse_trace(name: &str, text: &str) -> Result<Workload, TraceError> {
    let mut workload = Workload::new(name);
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let at = |message: String| TraceError {
            line: line_no,
            message,
        };
        let parsed = parse_line(trimmed).map_err(at)?;
        let require = |field: &str, value: Option<u64>| {
            value.ok_or_else(|| at(format!("missing required field '{field}'")))
        };
        let src = require("src", parsed.src)?;
        let dst = require("dst", parsed.dst)?;
        let bytes = require("bytes", parsed.bytes)?;
        let mut flow = Flow::new(FlowId(0), CoreId(src as usize), CoreId(dst as usize), bytes)
            .released_at(parsed.release)
            .in_collective(parsed.collective.unwrap_or_else(|| "trace".to_string()));
        for dep in parsed.deps {
            flow = flow.after(FlowId(dep as usize));
        }
        workload.add_flow(flow);
    }
    if workload.is_empty() {
        return Err(TraceError {
            line: 0,
            message: "trace contains no flows".to_string(),
        });
    }
    workload.validate().map_err(|error| TraceError {
        line: 0,
        message: error.to_string(),
    })?;
    Ok(workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_trace_round_trips_into_a_workload() {
        let text = r#"
# a two-phase request/reply exchange
{"src":0,"dst":4,"bytes":4096,"collective":"request"}
{"src":1,"dst":4,"bytes":2048,"collective":"request"}
{"src":4,"dst":0,"bytes":512,"deps":[0,1],"release":100,"collective":"reply"}
"#;
        let workload = parse_trace("req-reply", text).expect("valid trace");
        assert_eq!(workload.len(), 3);
        assert_eq!(workload.total_bytes(), 4096 + 2048 + 512);
        assert_eq!(workload.name(), "req-reply");
        let reply = &workload.flows()[2];
        assert_eq!(reply.deps, vec![FlowId(0), FlowId(1)]);
        assert_eq!(reply.release_cycle, 100);
        assert_eq!(
            workload.collectives(),
            vec!["reply".to_string(), "request".to_string()]
        );
    }

    #[test]
    fn defaults_apply_when_optional_fields_are_absent() {
        let workload = parse_trace("minimal", r#"{"src":1,"dst":2,"bytes":64}"#).unwrap();
        let flow = &workload.flows()[0];
        assert!(flow.deps.is_empty());
        assert_eq!(flow.release_cycle, 0);
        assert_eq!(flow.collective, "trace");
    }

    #[test]
    fn errors_carry_line_numbers_and_reasons() {
        let missing = parse_trace("t", "{\"src\":0,\"dst\":1}\n").expect_err("no bytes");
        assert_eq!(missing.line, 1);
        assert!(missing.to_string().contains("'bytes'"), "{missing}");

        let syntax =
            parse_trace("t", "{\"src\":0,\"dst\":1,\"bytes\":8}\nnot json\n").expect_err("syntax");
        assert_eq!(syntax.line, 2);

        let unknown =
            parse_trace("t", r#"{"src":0,"dst":1,"bytes":8,"qos":3}"#).expect_err("unknown field");
        assert!(unknown.to_string().contains("unknown field 'qos'"));

        let empty = parse_trace("t", "# only a comment\n").expect_err("no flows");
        assert_eq!(empty.line, 0);
    }

    #[test]
    fn invalid_dags_are_rejected_after_parsing() {
        // Forward-referencing cycle: 0 depends on 1, 1 depends on 0.
        let text = "{\"src\":0,\"dst\":1,\"bytes\":8,\"deps\":[1]}\n\
                    {\"src\":1,\"dst\":2,\"bytes\":8,\"deps\":[0]}\n";
        let error = parse_trace("cyclic", text).expect_err("cycle");
        assert!(error.to_string().contains("cycle"), "{error}");

        let dangling = parse_trace("t", r#"{"src":0,"dst":1,"bytes":8,"deps":[9]}"#)
            .expect_err("dangling dep");
        assert!(dangling.to_string().contains("only 1 flows"), "{dangling}");
    }

    #[test]
    fn whitespace_and_field_order_are_flexible() {
        let workload = parse_trace("ws", "  { \"bytes\" : 8 , \"dst\" : 1 , \"src\" : 0 }  ")
            .expect("whitespace tolerated");
        assert_eq!(workload.len(), 1);
    }
}
