//! The workload registry: the open-ended catalogue of closed-loop
//! workloads, mirroring the architecture registry of `pnoc-sim` and the
//! traffic registry of `pnoc-traffic`.
//!
//! A workload implements [`WorkloadFactory`] — a name plus a
//! `build(spec) → Workload` constructor — and registers into the
//! process-global [`WorkloadRegistry`]. Downstream harnesses resolve
//! workloads by `NAME[:SIZE]` references ([`WorkloadRef`]); unknown names
//! fail with the full catalogue and a "did you mean" suggestion, exactly
//! like the other two registries.
//!
//! Built-in factories:
//!
//! | name | alias | generator |
//! |------|-------|-----------|
//! | `ring-allreduce` | `allreduce` | [`crate::collectives::ring_allreduce`] |
//! | `tree-allreduce` | | [`crate::collectives::tree_allreduce`] |
//! | `all-to-all` | `shuffle` | [`crate::collectives::all_to_all`] |
//! | `parameter-server` | `ps` | [`crate::collectives::parameter_server`] |
//! | `incast` | | [`crate::collectives::incast`] |

use crate::collectives;
use crate::dag::Workload;
use pnoc_noc::suggest::unknown_name_message;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default per-node payload of generated workloads: 16 KiB per participant,
/// i.e. 64 packets of the universal 2048-bit packet — big enough that
/// bandwidth matters, small enough that smoke runs drain in tens of
/// thousands of cycles.
pub const DEFAULT_BYTES_PER_NODE: u64 = 16 * 1024;

/// Everything a factory needs to instantiate a workload for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of participating cores (mapped onto cores `0..size`).
    pub size: usize,
    /// Payload per participating node, bytes.
    pub bytes_per_node: u64,
}

impl WorkloadSpec {
    /// Creates a spec with the [`DEFAULT_BYTES_PER_NODE`] payload.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            size,
            bytes_per_node: DEFAULT_BYTES_PER_NODE,
        }
    }
}

/// A factory for one closed-loop workload family.
///
/// Like the architecture and traffic factories, implementations are shared
/// across sweep worker threads; [`WorkloadFactory::build`] must be a pure
/// function of the spec so that batch deduplication and the parallel /
/// sequential determinism guarantee hold.
pub trait WorkloadFactory: Send + Sync {
    /// Stable registry key (`"ring-allreduce"`, `"incast"`, ...).
    fn name(&self) -> &str;

    /// Participant count used when a [`WorkloadRef`] omits `:SIZE`.
    fn default_size(&self) -> usize {
        16
    }

    /// Builds the workload for one run. Implementations must return a
    /// workload that passes [`Workload::validate`].
    fn build(&self, spec: &WorkloadSpec) -> Workload;
}

/// A [`WorkloadFactory`] from a name and a plain constructor function.
struct FnWorkloadFactory {
    name: &'static str,
    construct: fn(&WorkloadSpec) -> Workload,
}

impl WorkloadFactory for FnWorkloadFactory {
    fn name(&self) -> &str {
        self.name
    }

    fn build(&self, spec: &WorkloadSpec) -> Workload {
        (self.construct)(spec)
    }
}

fn builtin_factories() -> Vec<Arc<dyn WorkloadFactory>> {
    let f = |name: &'static str,
             construct: fn(&WorkloadSpec) -> Workload|
     -> Arc<dyn WorkloadFactory> { Arc::new(FnWorkloadFactory { name, construct }) };
    vec![
        f("ring-allreduce", |s| {
            collectives::ring_allreduce(s.size, s.bytes_per_node)
        }),
        f("tree-allreduce", |s| {
            collectives::tree_allreduce(s.size, s.bytes_per_node)
        }),
        f("all-to-all", |s| {
            collectives::all_to_all(s.size, s.bytes_per_node)
        }),
        f("parameter-server", |s| {
            collectives::parameter_server(s.size, s.bytes_per_node)
        }),
        f("incast", |s| collectives::incast(s.size, s.bytes_per_node)),
    ]
}

/// Shorthand workload names accepted by lookups, mapped to their canonical
/// registry keys (the same convention as `pnoc-traffic`'s pattern aliases:
/// only canonical names appear in the catalogue).
pub const WORKLOAD_ALIASES: [(&str, &str); 3] = [
    ("allreduce", "ring-allreduce"),
    ("shuffle", "all-to-all"),
    ("ps", "parameter-server"),
];

/// Resolves a workload shorthand to its canonical registry name (identity
/// for names that are not shorthands).
#[must_use]
pub fn canonical_workload_name(name: &str) -> &str {
    WORKLOAD_ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map_or(name, |(_, canonical)| canonical)
}

/// The failure of resolving a workload by name: carries the offending name,
/// the full sorted catalogue, and (when one is within typo distance) the
/// nearest registered name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkloadError {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name registered at the time of the lookup, sorted.
    pub registered: Vec<String>,
}

impl UnknownWorkloadError {
    /// The registered name closest to the unknown one, if any is plausibly a
    /// typo of it.
    #[must_use]
    pub fn suggestion(&self) -> Option<&str> {
        pnoc_noc::suggest::nearest_name(&self.name, self.registered.iter().map(String::as_str))
    }
}

impl std::fmt::Display for UnknownWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&unknown_name_message(
            "workload",
            &self.name,
            &self.registered,
        ))
    }
}

impl std::error::Error for UnknownWorkloadError {}

/// A name-keyed collection of workload factories.
#[derive(Default, Clone)]
pub struct WorkloadRegistry {
    factories: BTreeMap<String, Arc<dyn WorkloadFactory>>,
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl WorkloadRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with every built-in workload.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut registry = Self::new();
        for factory in builtin_factories() {
            registry.register(factory);
        }
        registry
    }

    /// Registers a factory under its own name, replacing (and returning) any
    /// previous factory of the same name.
    pub fn register(
        &mut self,
        factory: Arc<dyn WorkloadFactory>,
    ) -> Option<Arc<dyn WorkloadFactory>> {
        self.factories.insert(factory.name().to_string(), factory)
    }

    /// Looks up a factory by name. Exact registered names always win; when
    /// nothing is registered under `name`, well-known shorthands fall back
    /// to their canonical workload (see [`canonical_workload_name`]).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn WorkloadFactory>> {
        self.factories
            .get(name)
            .or_else(|| self.factories.get(canonical_workload_name(name)))
            .cloned()
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Number of registered workloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

fn global() -> &'static Mutex<WorkloadRegistry> {
    static GLOBAL: OnceLock<Mutex<WorkloadRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(WorkloadRegistry::with_builtins()))
}

/// Registers a factory into the process-global registry, replacing (and
/// returning) any previous factory of the same name.
pub fn register_workload_factory(
    factory: Arc<dyn WorkloadFactory>,
) -> Option<Arc<dyn WorkloadFactory>> {
    global()
        .lock()
        .expect("workload registry poisoned")
        .register(factory)
}

/// Looks up a factory in the process-global registry.
///
/// # Errors
///
/// Returns [`UnknownWorkloadError`] — which lists every registered name and
/// suggests the nearest match — when no factory of that name is registered.
pub fn lookup_workload_factory(
    name: &str,
) -> Result<Arc<dyn WorkloadFactory>, UnknownWorkloadError> {
    let registry = global().lock().expect("workload registry poisoned");
    registry.get(name).ok_or_else(|| UnknownWorkloadError {
        name: name.to_string(),
        registered: registry.names(),
    })
}

/// Names registered in the process-global registry, sorted.
#[must_use]
pub fn registered_workloads() -> Vec<String> {
    global().lock().expect("workload registry poisoned").names()
}

/// A `NAME[:SIZE]` workload reference — the spelling accepted by `repro
/// --workload` and stored in scenario specs. `SIZE` is the participant
/// count; omitted, the factory's [`WorkloadFactory::default_size`] applies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadRef {
    /// Workload name (canonical or alias).
    pub name: String,
    /// Explicit participant count, if given.
    pub size: Option<usize>,
}

impl WorkloadRef {
    /// Parses `NAME[:SIZE]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on an empty name, a malformed size,
    /// or extra `:` parts.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let name = parts.next().unwrap_or_default();
        if name.is_empty() {
            return Err(format!("workload reference '{text}' has an empty name"));
        }
        let size = match parts.next() {
            None => None,
            Some(size_text) => Some(size_text.parse::<usize>().map_err(|_| {
                format!("workload size '{size_text}' in '{text}' is not a positive integer")
            })?),
        };
        if parts.next().is_some() {
            return Err(format!(
                "workload reference '{text}' has too many ':' parts (expected NAME[:SIZE])"
            ));
        }
        if size == Some(0) {
            return Err(format!("workload size in '{text}' must be positive"));
        }
        Ok(Self {
            name: name.to_string(),
            size,
        })
    }

    /// Resolves the reference against the process-global registry, returning
    /// the factory and the effective participant count.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownWorkloadError`] when the name is not registered.
    pub fn resolve(&self) -> Result<(Arc<dyn WorkloadFactory>, usize), UnknownWorkloadError> {
        let factory = lookup_workload_factory(&self.name)?;
        let size = self.size.unwrap_or_else(|| factory.default_size());
        Ok((factory, size))
    }
}

impl std::fmt::Display for WorkloadRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.size {
            Some(size) => write!(f, "{}:{size}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_the_canonical_collectives() {
        let registry = WorkloadRegistry::with_builtins();
        for name in [
            "ring-allreduce",
            "tree-allreduce",
            "all-to-all",
            "parameter-server",
            "incast",
        ] {
            assert!(registry.get(name).is_some(), "workload '{name}' missing");
        }
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }

    #[test]
    fn built_workloads_validate_and_scale_with_the_spec() {
        let registry = WorkloadRegistry::with_builtins();
        for name in registry.names() {
            let factory = registry.get(&name).expect("just listed");
            for size in [2usize, 5, 16] {
                let spec = WorkloadSpec {
                    size,
                    bytes_per_node: 4096,
                };
                let workload = factory.build(&spec);
                workload.validate().unwrap_or_else(|error| {
                    panic!("workload '{name}' (size {size}) invalid: {error}")
                });
                assert!(
                    workload.max_core().expect("non-empty") < size,
                    "workload '{name}' uses cores beyond its size"
                );
            }
        }
    }

    #[test]
    fn aliases_resolve_but_do_not_appear_in_the_catalogue() {
        assert_eq!(canonical_workload_name("allreduce"), "ring-allreduce");
        assert_eq!(canonical_workload_name("shuffle"), "all-to-all");
        assert_eq!(canonical_workload_name("incast"), "incast");
        let via_alias = lookup_workload_factory("allreduce").expect("alias resolves");
        assert_eq!(via_alias.name(), "ring-allreduce");
        assert!(!registered_workloads().contains(&"allreduce".to_string()));
    }

    #[test]
    fn unknown_workload_error_lists_names_and_suggests_the_nearest() {
        let Err(error) = lookup_workload_factory("ring-alreduce") else {
            panic!("'ring-alreduce' must not resolve");
        };
        assert_eq!(error.suggestion(), Some("ring-allreduce"));
        let message = error.to_string();
        assert!(
            message.contains("unknown workload 'ring-alreduce'"),
            "{message}"
        );
        assert!(
            message.contains("did you mean 'ring-allreduce'?"),
            "{message}"
        );
        assert!(message.contains("incast"));
    }

    #[test]
    fn workload_refs_parse_display_and_resolve() {
        let bare = WorkloadRef::parse("incast").unwrap();
        assert_eq!(bare.size, None);
        assert_eq!(bare.to_string(), "incast");
        let (factory, size) = bare.resolve().expect("registered");
        assert_eq!(factory.name(), "incast");
        assert_eq!(size, factory.default_size());

        let sized = WorkloadRef::parse("allreduce:64").unwrap();
        assert_eq!(sized.size, Some(64));
        assert_eq!(sized.to_string(), "allreduce:64");
        let (factory, size) = sized.resolve().expect("alias registered");
        assert_eq!(factory.name(), "ring-allreduce");
        assert_eq!(size, 64);

        for bad in ["", ":8", "allreduce:zero", "allreduce:0", "a:1:2"] {
            assert!(WorkloadRef::parse(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn custom_factories_register_into_the_global_registry() {
        struct Custom;

        impl WorkloadFactory for Custom {
            fn name(&self) -> &str {
                "custom-test-workload"
            }

            fn build(&self, spec: &WorkloadSpec) -> Workload {
                collectives::incast(spec.size, spec.bytes_per_node)
            }
        }

        register_workload_factory(Arc::new(Custom));
        assert!(lookup_workload_factory("custom-test-workload").is_ok());
    }
}
