//! Generators for the canonical rack collectives.
//!
//! Every generator takes the number of participating cores `nodes` (mapped
//! onto cores `0..nodes`) and a per-node payload `bytes_per_node`, and
//! produces a validated [`Workload`] whose total byte volume matches an
//! analytic formula (`*_total_bytes`). The property tests in
//! `tests/prop_workload.rs` pin the generators against those formulas and
//! against DAG acyclicity.
//!
//! | generator | dependency structure |
//! |-----------|----------------------|
//! | [`ring_allreduce`] | `2(n−1)` serialized ring steps (reduce-scatter, all-gather) |
//! | [`tree_allreduce`] | binary-tree reduce, then broadcast back down |
//! | [`all_to_all`] | none — a full shuffle burst |
//! | [`parameter_server`] | push fan-in, global barrier, pull fan-out |
//! | [`incast`] | none — everyone targets core 0 |

use crate::dag::Workload;
use crate::flow::{Flow, FlowId};
use pnoc_noc::ids::CoreId;

fn assert_nodes(kind: &str, nodes: usize, bytes_per_node: u64) {
    assert!(nodes >= 2, "{kind} needs at least 2 nodes, got {nodes}");
    assert!(bytes_per_node > 0, "{kind} needs a positive payload");
}

/// The chunk size a ring all-reduce circulates: the per-node payload split
/// over `nodes` ring slots, rounded up.
#[must_use]
pub fn ring_chunk_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    bytes_per_node.div_ceil(nodes as u64).max(1)
}

/// Analytic wire volume of [`ring_allreduce`]: `2·(n−1)` steps in which all
/// `n` nodes forward one chunk each.
#[must_use]
pub fn ring_allreduce_total_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    2 * (nodes as u64 - 1) * nodes as u64 * ring_chunk_bytes(nodes, bytes_per_node)
}

/// Ring all-reduce over cores `0..nodes`: a reduce-scatter phase followed by
/// an all-gather phase, each of `n−1` steps in which every node sends one
/// chunk of `⌈bytes_per_node / n⌉` bytes to its ring successor. The flow a
/// node sends at step `s` carries data it received at step `s−1`, so it
/// depends on its ring predecessor's step-`s−1` flow — the classic
/// bandwidth-optimal but latency-serialized collective.
///
/// # Panics
///
/// Panics if `nodes < 2` or `bytes_per_node == 0`.
#[must_use]
pub fn ring_allreduce(nodes: usize, bytes_per_node: u64) -> Workload {
    assert_nodes("ring all-reduce", nodes, bytes_per_node);
    let chunk = ring_chunk_bytes(nodes, bytes_per_node);
    let mut workload = Workload::new(format!("ring-allreduce:{nodes}x{bytes_per_node}B"));
    let steps = 2 * (nodes - 1);
    for step in 0..steps {
        let phase = if step < nodes - 1 {
            "reduce-scatter"
        } else {
            "all-gather"
        };
        for node in 0..nodes {
            let successor = (node + 1) % nodes;
            let mut flow =
                Flow::new(FlowId(0), CoreId(node), CoreId(successor), chunk).in_collective(phase);
            if step > 0 {
                // The chunk forwarded now arrived from the ring predecessor
                // in the previous step: flow (step−1, node−1).
                let predecessor = (node + nodes - 1) % nodes;
                flow = flow.after(FlowId((step - 1) * nodes + predecessor));
            }
            workload.add_flow(flow);
        }
    }
    debug_assert_eq!(
        workload.total_bytes(),
        ring_allreduce_total_bytes(nodes, bytes_per_node)
    );
    debug_assert!(workload.validate().is_ok());
    workload
}

/// Analytic wire volume of [`tree_allreduce`]: every non-root node sends its
/// payload up once and receives the result down once.
#[must_use]
pub fn tree_allreduce_total_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    2 * (nodes as u64 - 1) * bytes_per_node
}

/// Binary-tree all-reduce over cores `0..nodes` rooted at core 0: every
/// non-root node `i` sends `bytes_per_node` to its parent `(i−1)/2` once its
/// own subtree has reduced into it, then the root broadcasts the result back
/// down the same tree. Depth-bound (`2·⌈log₂ n⌉` serialized levels) instead
/// of the ring's `2(n−1)` steps.
///
/// # Panics
///
/// Panics if `nodes < 2` or `bytes_per_node == 0`.
#[must_use]
pub fn tree_allreduce(nodes: usize, bytes_per_node: u64) -> Workload {
    assert_nodes("tree all-reduce", nodes, bytes_per_node);
    let mut workload = Workload::new(format!("tree-allreduce:{nodes}x{bytes_per_node}B"));
    // Reduce flows: flow id i−1 carries node i's contribution to its parent.
    for node in 1..nodes {
        let parent = (node - 1) / 2;
        let mut flow = Flow::new(FlowId(0), CoreId(node), CoreId(parent), bytes_per_node)
            .in_collective("reduce");
        for child in [2 * node + 1, 2 * node + 2] {
            if child < nodes {
                flow = flow.after(FlowId(child - 1));
            }
        }
        workload.add_flow(flow);
    }
    // Broadcast flows: flow id (n−1) + (i−1) returns the result to node i.
    for node in 1..nodes {
        let parent = (node - 1) / 2;
        let mut flow = Flow::new(FlowId(0), CoreId(parent), CoreId(node), bytes_per_node)
            .in_collective("broadcast");
        if parent == 0 {
            // The root may only broadcast after its direct children reduced
            // into it.
            for child in [1usize, 2] {
                if child < nodes {
                    flow = flow.after(FlowId(child - 1));
                }
            }
        } else {
            flow = flow.after(FlowId(nodes - 1 + parent - 1));
        }
        workload.add_flow(flow);
    }
    debug_assert_eq!(
        workload.total_bytes(),
        tree_allreduce_total_bytes(nodes, bytes_per_node)
    );
    debug_assert!(workload.validate().is_ok());
    workload
}

/// Analytic wire volume of [`all_to_all`]: every ordered pair exchanges one
/// payload.
#[must_use]
pub fn all_to_all_total_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    nodes as u64 * (nodes as u64 - 1) * bytes_per_node
}

/// All-to-all shuffle over cores `0..nodes`: every node sends
/// `bytes_per_node` to every other node, all flows released at once with no
/// dependencies — the pure bisection-bandwidth stress of a MapReduce
/// shuffle.
///
/// # Panics
///
/// Panics if `nodes < 2` or `bytes_per_node == 0`.
#[must_use]
pub fn all_to_all(nodes: usize, bytes_per_node: u64) -> Workload {
    assert_nodes("all-to-all", nodes, bytes_per_node);
    let mut workload = Workload::new(format!("all-to-all:{nodes}x{bytes_per_node}B"));
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                workload.add_flow(
                    Flow::new(FlowId(0), CoreId(src), CoreId(dst), bytes_per_node)
                        .in_collective("shuffle"),
                );
            }
        }
    }
    debug_assert_eq!(
        workload.total_bytes(),
        all_to_all_total_bytes(nodes, bytes_per_node)
    );
    workload
}

/// Analytic wire volume of [`parameter_server`]: each worker pushes once and
/// pulls once.
#[must_use]
pub fn parameter_server_total_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    2 * (nodes as u64 - 1) * bytes_per_node
}

/// Parameter-server round over cores `0..nodes` with core 0 as the server:
/// every worker pushes `bytes_per_node` of gradients to the server, and
/// every pull of the updated model depends on **all** pushes — a global
/// barrier at the server, fan-in congestion on the way up, fan-out on the
/// way down.
///
/// # Panics
///
/// Panics if `nodes < 2` or `bytes_per_node == 0`.
#[must_use]
pub fn parameter_server(nodes: usize, bytes_per_node: u64) -> Workload {
    assert_nodes("parameter server", nodes, bytes_per_node);
    let mut workload = Workload::new(format!("parameter-server:{nodes}x{bytes_per_node}B"));
    for worker in 1..nodes {
        workload.add_flow(
            Flow::new(FlowId(0), CoreId(worker), CoreId(0), bytes_per_node).in_collective("push"),
        );
    }
    for worker in 1..nodes {
        let mut flow =
            Flow::new(FlowId(0), CoreId(0), CoreId(worker), bytes_per_node).in_collective("pull");
        for push in 0..nodes - 1 {
            flow = flow.after(FlowId(push));
        }
        workload.add_flow(flow);
    }
    debug_assert_eq!(
        workload.total_bytes(),
        parameter_server_total_bytes(nodes, bytes_per_node)
    );
    workload
}

/// Analytic wire volume of [`incast`].
#[must_use]
pub fn incast_total_bytes(nodes: usize, bytes_per_node: u64) -> u64 {
    (nodes as u64 - 1) * bytes_per_node
}

/// Incast over cores `0..nodes`: every node except core 0 sends
/// `bytes_per_node` to core 0 simultaneously — the classic ejection-port /
/// last-hop congestion microbenchmark.
///
/// # Panics
///
/// Panics if `nodes < 2` or `bytes_per_node == 0`.
#[must_use]
pub fn incast(nodes: usize, bytes_per_node: u64) -> Workload {
    assert_nodes("incast", nodes, bytes_per_node);
    let mut workload = Workload::new(format!("incast:{nodes}x{bytes_per_node}B"));
    for src in 1..nodes {
        workload.add_flow(
            Flow::new(FlowId(0), CoreId(src), CoreId(0), bytes_per_node).in_collective("incast"),
        );
    }
    debug_assert_eq!(
        workload.total_bytes(),
        incast_total_bytes(nodes, bytes_per_node)
    );
    workload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_shape_and_dependencies() {
        let w = ring_allreduce(4, 1024);
        w.validate().expect("valid");
        // 2·(4−1) steps × 4 nodes.
        assert_eq!(w.len(), 24);
        assert_eq!(w.total_bytes(), ring_allreduce_total_bytes(4, 1024));
        assert_eq!(
            w.collectives(),
            vec!["all-gather".to_string(), "reduce-scatter".to_string()]
        );
        // Step-0 flows are roots; every later flow depends on exactly one
        // predecessor flow of the previous step.
        for flow in w.flows() {
            let step = flow.id.0 / 4;
            if step == 0 {
                assert!(flow.deps.is_empty());
            } else {
                assert_eq!(flow.deps.len(), 1);
                assert_eq!(flow.deps[0].0 / 4, step - 1);
            }
        }
        assert_eq!(w.max_core(), Some(3));
    }

    #[test]
    fn ring_chunk_rounds_up() {
        assert_eq!(ring_chunk_bytes(4, 1024), 256);
        assert_eq!(ring_chunk_bytes(3, 1024), 342);
        assert_eq!(ring_chunk_bytes(64, 10), 1);
    }

    #[test]
    fn tree_allreduce_reduces_up_and_broadcasts_down() {
        let w = tree_allreduce(7, 512);
        w.validate().expect("valid");
        assert_eq!(w.len(), 12); // 6 reduce + 6 broadcast flows.
        assert_eq!(w.total_bytes(), tree_allreduce_total_bytes(7, 512));
        // Leaves (3..7) reduce with no dependencies; internal nodes wait for
        // their children.
        assert!(w.flows()[3 - 1].deps.is_empty(), "node 3 is a leaf");
        assert_eq!(w.flows()[1 - 1].deps.len(), 2, "node 1 has two children");
        // Every broadcast depends on something.
        for flow in &w.flows()[6..] {
            assert!(!flow.deps.is_empty());
            assert_eq!(flow.collective, "broadcast");
        }
    }

    #[test]
    fn all_to_all_and_incast_are_dependency_free() {
        let shuffle = all_to_all(5, 64);
        shuffle.validate().expect("valid");
        assert_eq!(shuffle.len(), 20);
        assert!(shuffle.flows().iter().all(|f| f.deps.is_empty()));
        assert_eq!(shuffle.total_bytes(), all_to_all_total_bytes(5, 64));

        let fanin = incast(9, 64);
        fanin.validate().expect("valid");
        assert_eq!(fanin.len(), 8);
        assert!(fanin.flows().iter().all(|f| f.dst == CoreId(0)));
        assert_eq!(fanin.total_bytes(), incast_total_bytes(9, 64));
    }

    #[test]
    fn parameter_server_pulls_barrier_on_all_pushes() {
        let w = parameter_server(5, 256);
        w.validate().expect("valid");
        assert_eq!(w.len(), 8); // 4 pushes + 4 pulls.
        assert_eq!(w.total_bytes(), parameter_server_total_bytes(5, 256));
        for pull in &w.flows()[4..] {
            assert_eq!(pull.src, CoreId(0));
            assert_eq!(pull.deps.len(), 4, "each pull waits for every push");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_collectives_are_rejected() {
        let _ = ring_allreduce(1, 1024);
    }
}
