#![doc = include_str!("workload.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collectives;
pub mod dag;
pub mod flow;
pub mod registry;
pub mod trace;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::collectives::{
        all_to_all, incast, parameter_server, ring_allreduce, tree_allreduce,
    };
    pub use crate::dag::{Workload, WorkloadValidationError};
    pub use crate::flow::{Flow, FlowId};
    pub use crate::registry::{
        lookup_workload_factory, register_workload_factory, registered_workloads,
        UnknownWorkloadError, WorkloadFactory, WorkloadRef, WorkloadRegistry, WorkloadSpec,
        DEFAULT_BYTES_PER_NODE,
    };
    pub use crate::trace::{parse_trace, TraceError};
}

pub use prelude::*;
