//! The [`Flow`] primitive: one finite transfer between two cores.

use pnoc_noc::ids::CoreId;
use serde::{Deserialize, Serialize};

/// Identifier of one flow within a [`Workload`](crate::dag::Workload): the
/// flow's index in the workload's flow list (checked by
/// [`Workload::validate`](crate::dag::Workload::validate)).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub usize);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One finite transfer: `bytes` bytes from `src` to `dst`, eligible to start
/// once every flow in `deps` has completed **and** the clock has reached
/// `release_cycle`. Flows are grouped into named phases by their
/// `collective` label (per-collective makespans are reported per label).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Identifier; must equal the flow's index in its workload.
    pub id: FlowId,
    /// Source core.
    pub src: CoreId,
    /// Destination core (must differ from `src`).
    pub dst: CoreId,
    /// Payload size in bytes (must be positive).
    pub bytes: u64,
    /// Flows that must complete before this one may start.
    pub deps: Vec<FlowId>,
    /// Earliest cycle this flow may start, even with all dependencies met.
    pub release_cycle: u64,
    /// Collective / phase label ("reduce-scatter", "push", ...).
    pub collective: String,
}

impl Flow {
    /// Creates a dependency-free flow released at cycle 0 with an empty
    /// collective label.
    #[must_use]
    pub fn new(id: FlowId, src: CoreId, dst: CoreId, bytes: u64) -> Self {
        Self {
            id,
            src,
            dst,
            bytes,
            deps: Vec::new(),
            release_cycle: 0,
            collective: String::new(),
        }
    }

    /// Adds a dependency.
    #[must_use]
    pub fn after(mut self, dep: FlowId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Sets the earliest release cycle.
    #[must_use]
    pub fn released_at(mut self, cycle: u64) -> Self {
        self.release_cycle = cycle;
        self
    }

    /// Sets the collective label.
    #[must_use]
    pub fn in_collective(mut self, label: impl Into<String>) -> Self {
        self.collective = label.into();
        self
    }

    /// Number of network packets this flow occupies when packets carry
    /// `packet_bits` payload bits (rounded up; at least one packet, so even
    /// a sub-packet flow is observable on the wire).
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is zero.
    #[must_use]
    pub fn packets(&self, packet_bits: u64) -> u64 {
        assert!(packet_bits > 0, "packets must carry at least one bit");
        (self.bytes * 8).div_ceil(packet_bits).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_dependencies_and_labels() {
        let flow = Flow::new(FlowId(3), CoreId(0), CoreId(5), 4096)
            .after(FlowId(1))
            .after(FlowId(2))
            .released_at(100)
            .in_collective("push");
        assert_eq!(flow.deps, vec![FlowId(1), FlowId(2)]);
        assert_eq!(flow.release_cycle, 100);
        assert_eq!(flow.collective, "push");
        assert_eq!(flow.id.to_string(), "f3");
    }

    #[test]
    fn packet_count_rounds_up_and_never_hits_zero() {
        // 4096 bytes = 32768 bits = exactly 16 packets of 2048 bits.
        let flow = Flow::new(FlowId(0), CoreId(0), CoreId(1), 4096);
        assert_eq!(flow.packets(2048), 16);
        // 4097 bytes needs a 17th packet.
        let flow = Flow::new(FlowId(0), CoreId(0), CoreId(1), 4097);
        assert_eq!(flow.packets(2048), 17);
        // A 1-byte flow still occupies one packet.
        let flow = Flow::new(FlowId(0), CoreId(0), CoreId(1), 1);
        assert_eq!(flow.packets(2048), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_packet_bits_is_rejected() {
        let _ = Flow::new(FlowId(0), CoreId(0), CoreId(1), 1).packets(0);
    }
}
