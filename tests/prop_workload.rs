//! Property tests of the collective workload generators: every generated
//! workload is a valid DAG (acyclic, in-range dependencies, non-empty
//! transfers, no self-loops), its total byte volume matches the collective's
//! analytic formula, and packet accounting is conservative.

use d_hetpnoc_repro::workload::collectives::{
    all_to_all, all_to_all_total_bytes, incast, incast_total_bytes, parameter_server,
    parameter_server_total_bytes, ring_allreduce, ring_allreduce_total_bytes, tree_allreduce,
    tree_allreduce_total_bytes,
};
use d_hetpnoc_repro::workload::dag::Workload;
use d_hetpnoc_repro::workload::registry::{registered_workloads, WorkloadRegistry, WorkloadSpec};
use proptest::prelude::*;

/// Every structural invariant the closed-loop driver relies on, checked in
/// one place so each generator property asserts the same contract.
fn assert_valid_dag(workload: &Workload, nodes: usize) {
    workload
        .validate()
        .unwrap_or_else(|error| panic!("workload '{}' invalid: {error}", workload.name()));
    let max_core = workload.max_core().expect("generators never emit empty");
    assert!(
        max_core < nodes,
        "workload '{}' touches core {max_core} with only {nodes} participants",
        workload.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring all-reduce conserves bytes: `2·(n−1)·n·⌈B/n⌉` on the wire, with
    /// every step chunk-sized and the DAG acyclic.
    #[test]
    fn ring_allreduce_conserves_bytes_and_stays_acyclic(
        nodes in 2usize..64,
        bytes in 1u64..200_000,
    ) {
        let workload = ring_allreduce(nodes, bytes);
        assert_valid_dag(&workload, nodes);
        prop_assert_eq!(workload.total_bytes(), ring_allreduce_total_bytes(nodes, bytes));
        prop_assert_eq!(workload.len(), 2 * (nodes - 1) * nodes);
    }

    /// Tree all-reduce conserves bytes: every non-root node's payload goes
    /// up once and comes back down once.
    #[test]
    fn tree_allreduce_conserves_bytes_and_stays_acyclic(
        nodes in 2usize..64,
        bytes in 1u64..200_000,
    ) {
        let workload = tree_allreduce(nodes, bytes);
        assert_valid_dag(&workload, nodes);
        prop_assert_eq!(workload.total_bytes(), tree_allreduce_total_bytes(nodes, bytes));
        prop_assert_eq!(workload.len(), 2 * (nodes - 1));
    }

    /// The all-to-all shuffle conserves bytes: one payload per ordered pair.
    #[test]
    fn all_to_all_conserves_bytes_and_stays_acyclic(
        nodes in 2usize..48,
        bytes in 1u64..200_000,
    ) {
        let workload = all_to_all(nodes, bytes);
        assert_valid_dag(&workload, nodes);
        prop_assert_eq!(workload.total_bytes(), all_to_all_total_bytes(nodes, bytes));
        prop_assert_eq!(workload.len(), nodes * (nodes - 1));
    }

    /// Parameter-server and incast conserve bytes, and every generated
    /// workload — including theirs — is acyclic.
    #[test]
    fn fan_in_collectives_conserve_bytes_and_stay_acyclic(
        nodes in 2usize..64,
        bytes in 1u64..200_000,
    ) {
        let ps = parameter_server(nodes, bytes);
        assert_valid_dag(&ps, nodes);
        prop_assert_eq!(ps.total_bytes(), parameter_server_total_bytes(nodes, bytes));

        let fanin = incast(nodes, bytes);
        assert_valid_dag(&fanin, nodes);
        prop_assert_eq!(fanin.total_bytes(), incast_total_bytes(nodes, bytes));
    }

    /// Every registered factory (the registry surface the scenario engine
    /// resolves against) builds a valid, size-respecting DAG whose packet
    /// count covers its byte count.
    #[test]
    fn every_registered_workload_builds_a_valid_dag(
        size in 2usize..64,
        bytes in 1u64..100_000,
    ) {
        let registry = WorkloadRegistry::with_builtins();
        for name in registry.names() {
            let factory = registry.get(&name).expect("just listed");
            let workload = factory.build(&WorkloadSpec { size, bytes_per_node: bytes });
            assert_valid_dag(&workload, size);
            // Packet accounting covers the byte volume (2048-bit packets).
            let capacity_bits = workload.total_packets(2048) * 2048;
            prop_assert!(
                capacity_bits >= workload.total_bytes() * 8,
                "'{}' packs {} bytes into {} packet bits",
                name, workload.total_bytes(), capacity_bits
            );
        }
    }
}

#[test]
fn the_global_registry_serves_the_builtin_collectives() {
    let names = registered_workloads();
    for expected in [
        "all-to-all",
        "incast",
        "parameter-server",
        "ring-allreduce",
        "tree-allreduce",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "workload '{expected}' missing from {names:?}"
        );
    }
}
