//! Property-based tests of the analytic models and NoC data structures:
//! wormhole framing, arbiter fairness, the area model (equations 5–24), the
//! energy model and the reservation/DWDM arithmetic.

use d_hetpnoc_repro::prelude::*;
use pnoc_noc::ids::{CoreId, PacketId, RouterId, VcId};
use pnoc_noc::packet::{PacketDescriptor, PacketReassembler};
use pnoc_noc::router::RouterSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Framing a packet and reassembling it at the destination is lossless
    /// and order-preserving for any packet geometry.
    #[test]
    fn wormhole_framing_roundtrip(num_flits in 1u32..=128, flit_bits in 1u32..=512) {
        let packet = pnoc_noc::packet::Packet {
            id: PacketId(9),
            descriptor: PacketDescriptor {
                src: CoreId(0),
                dst: CoreId(5),
                num_flits,
                flit_bits,
                class: BandwidthClass::MediumLow,
                created_cycle: 0,
            },
            injected_cycle: 3,
        };
        let flits = PacketFramer::frame(&packet, VcId(2));
        prop_assert_eq!(flits.len() as u32, num_flits);
        prop_assert!(flits[0].is_head());
        prop_assert!(flits.last().unwrap().is_tail());
        prop_assert_eq!(flits.iter().filter(|f| f.is_head()).count(), 1);
        prop_assert_eq!(flits.iter().filter(|f| f.is_tail()).count(), 1);
        let total_bits: u64 = flits.iter().map(|f| u64::from(f.bits)).sum();
        prop_assert_eq!(total_bits, packet.total_bits());
        let mut reassembler = PacketReassembler::new();
        let mut completed = None;
        for flit in &flits {
            completed = reassembler.accept(flit);
        }
        prop_assert_eq!(completed, Some(PacketId(9)));
        prop_assert_eq!(reassembler.incomplete(), 0);
    }

    /// A packet pushed through an electrical router comes out complete, in
    /// order and on the right output port, for any packet length and port
    /// count.
    #[test]
    fn router_preserves_packets(
        num_flits in 1u32..=32,
        num_ports in 2usize..=6,
        out_port in 0usize..6,
    ) {
        let out_port = out_port % num_ports;
        let spec = RouterSpec::new(num_ports, 2, 64);
        let mut router = ElectricalRouter::new(RouterId(0), spec);
        router.set_route_fn(Box::new(move |_dst| pnoc_noc::ids::PortId(out_port)));
        let packet = pnoc_noc::packet::Packet {
            id: PacketId(1),
            descriptor: PacketDescriptor {
                src: CoreId(0),
                dst: CoreId(1),
                num_flits,
                flit_bits: 32,
                class: BandwidthClass::Low,
                created_cycle: 0,
            },
            injected_cycle: 0,
        };
        let flits = PacketFramer::frame(&packet, VcId(0));
        let mut cycle = 0u64;
        let mut received = Vec::new();
        let mut next_to_inject = 0usize;
        while received.len() < flits.len() && cycle < 10 * u64::from(num_flits) + 50 {
            if next_to_inject < flits.len()
                && router.can_accept(pnoc_noc::ids::PortId(1 % num_ports), VcId(0))
            {
                router
                    .accept(pnoc_noc::ids::PortId(1 % num_ports), VcId(0), flits[next_to_inject], cycle)
                    .unwrap();
                next_to_inject += 1;
            }
            for grant in router.step(cycle, |_, _, _| true) {
                prop_assert_eq!(grant.output, pnoc_noc::ids::PortId(out_port));
                received.push(grant.flit);
            }
            cycle += 1;
        }
        prop_assert_eq!(received.len(), flits.len(), "every flit must eventually leave");
        for (i, flit) in received.iter().enumerate() {
            prop_assert_eq!(flit.seq as usize, i, "flits must stay in order");
        }
    }

    /// Round-robin arbitration never grants an inactive requester and is
    /// starvation-free: a persistent requester is served within `n` grants.
    #[test]
    fn round_robin_is_fair(n in 1usize..=16, pattern in prop::collection::vec(any::<bool>(), 1..=16)) {
        let mut arb = RoundRobinArbiter::new(n);
        let requests: Vec<bool> = (0..n).map(|i| pattern.get(i).copied().unwrap_or(false)).collect();
        if requests.iter().any(|&r| r) {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let g = arb.grant(&requests).unwrap();
                prop_assert!(requests[g], "granted an inactive requester");
                seen.insert(g);
            }
            let active = requests.iter().filter(|&&r| r).count();
            prop_assert_eq!(seen.len(), active, "every active requester served within n rounds");
        } else {
            prop_assert!(arb.grant(&requests).is_none());
        }
    }

    /// Area model (equations 5–24): the d-HetPNoC always needs at least as
    /// many rings as Firefly, both grow monotonically with the wavelength
    /// count, and the area is exactly rings × π r².
    #[test]
    fn area_model_invariants(wavelengths in 1usize..=1024, clusters in 2usize..=64) {
        let model = AreaModel::new(clusters, 64);
        let dynamic = model.dynamic_report(wavelengths);
        let firefly = model.firefly_report(wavelengths);
        prop_assert!(dynamic.rings.total_rings() >= firefly.rings.total_rings());
        prop_assert!(dynamic.area_mm2 >= firefly.area_mm2);
        let ring_area = MicroRingResonator::paper_area_ring().footprint_mm2();
        prop_assert!((dynamic.area_mm2 - dynamic.rings.total_rings() as f64 * ring_area).abs() < 1e-9);
        // Monotonicity in the wavelength count.
        let bigger = model.dynamic_report(wavelengths + 64);
        prop_assert!(bigger.area_mm2 >= dynamic.area_mm2);
        prop_assert!(bigger.data_waveguides >= dynamic.data_waveguides);
    }

    /// Energy accounting is non-negative, additive and proportional to bits.
    #[test]
    fn energy_model_is_linear(bits in 0u64..10_000_000) {
        let model = PhotonicEnergyModel::paper_default();
        prop_assert!(model.photonic_transfer_pj(bits) >= 0.0);
        let double = model.photonic_transfer_pj(bits * 2);
        prop_assert!((double - 2.0 * model.photonic_transfer_pj(bits)).abs() < 1e-6);
        let mut acc = EnergyAccumulator::new(model);
        acc.record_photonic_transfer(bits);
        acc.record_router_traversal(bits);
        acc.record_buffer_write(bits);
        acc.record_buffer_occupancy(bits);
        let b = acc.breakdown();
        prop_assert!(b.total_pj() >= b.photonic_pj());
        prop_assert!(b.total_pj() >= 0.0);
    }

    /// DWDM grids: flatten/unflatten round-trips and identifier widths cover
    /// the grid.
    #[test]
    fn wavelength_grid_roundtrip(total in 1usize..=2048) {
        let grid = WavelengthGrid::for_total(total, 64);
        prop_assert!(grid.capacity() >= total);
        prop_assert!(grid.capacity() - total < 64);
        for flat in [0, total / 2, grid.capacity() - 1] {
            let id = grid.unflatten(flat);
            prop_assert_eq!(grid.flatten(id), flat);
        }
        // Identifier bits must be able to address every wavelength/waveguide.
        prop_assert!(1usize << grid.wavelength_index_bits() >= grid.wavelengths_per_waveguide());
        if grid.num_waveguides() > 1 {
            prop_assert!(1usize << grid.waveguide_number_bits() >= grid.num_waveguides());
        }
    }

    /// Reservation timing: identifier payloads grow with the bandwidth set
    /// and the latency never drops below one cycle.
    #[test]
    fn reservation_timing_is_sane(rate in 1.0f64..50.0) {
        let clock = Clock::paper_default();
        let mut last_bits = 0;
        for set in BandwidthSet::ALL {
            let timing = ReservationTiming::new(set, 64, rate, clock);
            prop_assert!(timing.cycles >= 1);
            prop_assert!(timing.identifier_payload_bits >= last_bits);
            last_bits = timing.identifier_payload_bits;
        }
    }

    /// The GPU speedup model is monotone in flit size and bounded.
    #[test]
    fn gpu_speedup_is_monotone_and_bounded(frac in 0.0f64..=1.0, residual in 0.0f64..=1.0) {
        let bench = GpuBenchmark::new("x", pnoc_traffic::gpu::BenchmarkSuite::CudaSdk, 1, frac, residual);
        let mut last = 0.0;
        for flit in [32u32, 64, 128, 256, 512, 1024] {
            let s = bench.speedup(flit);
            prop_assert!(s >= 1.0 - 1e-9);
            prop_assert!(s >= last - 1e-9);
            prop_assert!(s <= 1.0 / (1.0 - frac).max(1e-9) + 1e-9);
            last = s;
        }
    }
}
