//! Cross-crate integration tests: the full simulation stack (traffic →
//! electrical switches → photonic fabric → statistics) exercised end to end
//! for both architectures, checking the qualitative properties the paper's
//! evaluation relies on.

use d_hetpnoc_repro::prelude::*;
use pnoc_noc::ids::ClusterId;

/// A reduced-scale configuration so the whole file runs quickly in debug
/// builds while still exercising the paper's 64-core / 16-cluster system.
fn test_config() -> SimConfig {
    let mut config = SimConfig::fast(BandwidthSet::Set1);
    config.sim_cycles = 900;
    config.warmup_cycles = 200;
    config
}

fn shape(config: &SimConfig) -> PacketShape {
    PacketShape::new(
        config.bandwidth_set.packet_flits(),
        config.bandwidth_set.flit_bits(),
    )
}

#[test]
fn uniform_traffic_makes_the_architectures_equivalent() {
    // Figure 3-3: "with uniform traffic the d-HetPNoC and the baseline
    // crossbar-based Firefly performs similarly" — in this reproduction the
    // allocation degenerates to the Firefly allocation, so with the same seed
    // the two runs are statistically indistinguishable.
    let config = test_config();
    let load = OfferedLoad::new(config.estimated_saturation_load() * 0.8);
    let make = || {
        UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            shape(&config),
            load,
            config.seed,
        )
    };
    let firefly = run_to_completion(&mut build_firefly_system(config, make()));
    let dhet = run_to_completion(&mut build_dhetpnoc_system(config, make()));
    assert!(firefly.delivered_packets > 0);
    let rel = (firefly.accepted_bandwidth_gbps() - dhet.accepted_bandwidth_gbps()).abs()
        / firefly.accepted_bandwidth_gbps();
    assert!(
        rel < 0.02,
        "uniform traffic should give near-identical bandwidth (difference {:.2}%)",
        rel * 100.0
    );
}

#[test]
fn dhetpnoc_allocation_matches_firefly_under_uniform_demand() {
    let config = test_config();
    let load = OfferedLoad::new(0.001);
    let traffic =
        UniformRandomTraffic::new(ClusterTopology::paper_default(), shape(&config), load, 1);
    let system = build_dhetpnoc_system(config, traffic);
    let allocation = system.fabric().allocation_snapshot();
    assert_eq!(
        allocation,
        vec![4; 16],
        "uniform demand → 4 wavelengths per cluster"
    );
}

#[test]
fn skewed_traffic_is_not_slower_on_dhetpnoc_at_saturation() {
    // The headline claim (Figures 3-3/3-4): under skewed traffic the dynamic
    // allocation delivers at least Firefly's bandwidth at saturation.
    let config = test_config();
    let load = OfferedLoad::new(config.estimated_saturation_load() * 1.5);
    let make = || {
        SkewedTraffic::new(
            ClusterTopology::paper_default(),
            shape(&config),
            SkewLevel::Skewed3,
            load,
            config.seed,
        )
    };
    let firefly = run_to_completion(&mut build_firefly_system(config, make()));
    let dhet = run_to_completion(&mut build_dhetpnoc_system(config, make()));
    assert!(firefly.delivered_packets > 100, "need a meaningful sample");
    assert!(
        dhet.accepted_bandwidth_gbps() >= firefly.accepted_bandwidth_gbps() * 0.97,
        "d-HetPNoC ({:.1} Gb/s) should not fall behind Firefly ({:.1} Gb/s) on skewed traffic",
        dhet.accepted_bandwidth_gbps(),
        firefly.accepted_bandwidth_gbps()
    );
}

#[test]
fn dba_invariants_hold_after_a_full_simulation() {
    let config = test_config();
    let load = OfferedLoad::new(config.estimated_saturation_load());
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        shape(&config),
        SkewLevel::Skewed2,
        load,
        7,
    );
    let mut system = build_dhetpnoc_system(config, traffic);
    let stats = run_to_completion(&mut system);
    assert!(stats.delivered_packets > 0);
    system
        .fabric()
        .controller()
        .check_invariants()
        .expect("DBA invariants must hold after simulation");
    // Pools stay within [1, 8] for bandwidth set 1 and never exceed the budget.
    let allocation = system.fabric().allocation_snapshot();
    assert!(allocation.iter().all(|&p| (1..=8).contains(&p)));
    assert!(allocation.iter().sum::<usize>() <= 64);
}

#[test]
fn flit_accounting_is_consistent() {
    // Delivered flits = delivered packets × packet length; delivered bits
    // match the flit width; nothing is delivered that was never injected.
    let config = test_config();
    let load = OfferedLoad::new(config.estimated_saturation_load() * 0.5);
    let traffic =
        UniformRandomTraffic::new(ClusterTopology::paper_default(), shape(&config), load, 3);
    let mut system = build_firefly_system(config, traffic);
    let stats = run_to_completion(&mut system);
    let flits_per_packet = u64::from(config.bandwidth_set.packet_flits());
    // A packet whose delivery straddles the start of the measurement window
    // contributes its tail (and the packet count) but not its warm-up-era
    // flits. At most one packet per (core, VC) can be mid-ejection at the
    // boundary, which bounds the deficit.
    let straddle_slack =
        config.topology.num_cores() as u64 * config.vcs_per_port as u64 * flits_per_packet;
    assert!(
        stats.delivered_flits + straddle_slack >= stats.delivered_packets * flits_per_packet,
        "delivered {} flits for {} packets of {} flits",
        stats.delivered_flits,
        stats.delivered_packets,
        flits_per_packet
    );
    assert_eq!(
        stats.delivered_bits,
        stats.delivered_flits * u64::from(config.bandwidth_set.flit_bits())
    );
    assert!(stats.delivered_packets <= stats.injected_packets + 64);
    // Packets generated during warm-up may still sit in the injection queues
    // when measurement starts and inject inside the window; the backlog is
    // bounded by the queue capacity (plus one in-flight packet) per core.
    let backlog_slack =
        (config.topology.num_cores() * (config.injection_queue_capacity + 1)) as u64;
    assert!(stats.injected_packets <= stats.generated_packets + backlog_slack);
}

#[test]
fn energy_scales_with_delivered_traffic() {
    let config = test_config();
    let low = OfferedLoad::new(config.estimated_saturation_load() * 0.25);
    let high = OfferedLoad::new(config.estimated_saturation_load() * 0.75);
    let run = |load| {
        let traffic =
            UniformRandomTraffic::new(ClusterTopology::paper_default(), shape(&config), load, 11);
        run_to_completion(&mut build_dhetpnoc_system(config, traffic))
    };
    let a = run(low);
    let b = run(high);
    assert!(b.delivered_packets > a.delivered_packets);
    assert!(
        b.energy.total_pj() > a.energy.total_pj(),
        "more delivered traffic must dissipate more total energy"
    );
    // Per-packet energy stays within a sane envelope (well below 1 µJ).
    for stats in [&a, &b] {
        assert!(stats.packet_energy_pj() > 1_000.0);
        assert!(stats.packet_energy_pj() < 1_000_000.0);
    }
}

#[test]
fn higher_bandwidth_sets_deliver_more_aggregate_bandwidth() {
    // Figures 3-7 / 3-10: growing the wavelength budget from 64 to 512 grows
    // the achievable bandwidth by several times.
    let measure = |set: BandwidthSet| {
        let mut config = SimConfig::fast(set);
        config.sim_cycles = 900;
        config.warmup_cycles = 200;
        let load = OfferedLoad::new(config.estimated_saturation_load() * 1.5);
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(set.packet_flits(), set.flit_bits()),
            SkewLevel::Skewed3,
            load,
            config.seed,
        );
        run_to_completion(&mut build_dhetpnoc_system(config, traffic)).accepted_bandwidth_gbps()
    };
    let set1 = measure(BandwidthSet::Set1);
    let set3 = measure(BandwidthSet::Set3);
    assert!(
        set3 > 4.0 * set1,
        "512 wavelengths ({set3:.0} Gb/s) should deliver several times the bandwidth of 64 ({set1:.0} Gb/s)"
    );
}

#[test]
fn hotspot_and_real_application_traffic_run_end_to_end() {
    let config = test_config();
    let load = OfferedLoad::new(config.estimated_saturation_load() * 0.8);
    let hotspot = HotspotSkewedTraffic::new(
        ClusterTopology::paper_default(),
        shape(&config),
        SkewLevel::Skewed3,
        pnoc_noc::ids::CoreId(0),
        0.2,
        load,
        config.seed,
    );
    let stats = run_to_completion(&mut build_dhetpnoc_system(config, hotspot));
    assert!(stats.delivered_packets > 0, "hotspot traffic must flow");

    let real = RealApplicationTraffic::paper_mapping(
        ClusterTopology::paper_default(),
        shape(&config),
        load,
        config.seed,
    );
    let mut system = build_dhetpnoc_system(config, real);
    let stats = run_to_completion(&mut system);
    assert!(
        stats.delivered_packets > 0,
        "real-application traffic must flow"
    );
    // Memory clusters (12-15) should hold at least as much bandwidth on
    // average as the compute clusters running mostly low-bandwidth kernels.
    let allocation = system.fabric().allocation_snapshot();
    let memory_avg: f64 = allocation[12..16].iter().sum::<usize>() as f64 / 4.0;
    let lps_avg: f64 = allocation[8..12].iter().sum::<usize>() as f64 / 4.0;
    assert!(
        memory_avg >= lps_avg,
        "memory clusters ({memory_avg:.1}) should not get less bandwidth than LPS clusters ({lps_avg:.1}); allocation {allocation:?}"
    );
}

#[test]
fn demand_matrix_round_trips_through_the_fabric() {
    let config = test_config();
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        shape(&config),
        SkewLevel::Skewed1,
        OfferedLoad::new(0.001),
        5,
    );
    let matrix = DemandMatrix::from_model(&traffic, 16);
    let fabric = DhetFabric::new(&config, matrix.clone());
    for s in 0..16 {
        for d in 0..16 {
            if s == d {
                continue;
            }
            let (src, dst) = (ClusterId(s), ClusterId(d));
            assert_eq!(fabric.demand().class(src, dst), matrix.class(src, dst));
            let w = fabric.wavelengths_for(src, dst);
            assert!(w >= 1 && w <= DhetFabric::default_max_channel_wavelengths(&config));
        }
    }
}

#[test]
fn parameterized_specs_run_end_to_end_across_architectures() {
    d_hetpnoc_repro::install_architectures();
    // One batch sweeping a Firefly geometry knob and a d-HetPNoC
    // provisioning knob next to the paper defaults; everything runs through
    // the same deduplicated queue and stays bitwise-deterministic.
    let matrix = ScenarioMatrix::new()
        .architectures([
            "firefly",
            "firefly{radix=32}",
            "d-hetpnoc{policy=paper-max}",
        ])
        .traffics(["skewed-2"])
        .effort(Effort::Smoke);
    let first = matrix.run().expect("all specs valid");
    let second = matrix.run().expect("all specs valid");
    assert_eq!(first.scenarios.len(), 3);
    assert!(
        first.bitwise_eq(&second),
        "param-swept batches must be reproducible run-to-run"
    );
    // The radix override must actually change Firefly's measured sweep.
    let default_firefly = &first.scenarios[0];
    let narrow_firefly = &first.scenarios[1];
    assert_eq!(narrow_firefly.spec.arch_params.get("radix"), Some("32"));
    assert_ne!(
        default_firefly.result, narrow_firefly.result,
        "radix=32 halves every channel and must move the sweep"
    );
}
