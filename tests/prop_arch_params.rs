//! Property-based tests of the architecture-parameter system: spec strings
//! round-trip through parse↔render, schema validation accepts exactly the
//! declared in-bounds values, and a parameter-swept scenario matrix is
//! deterministic across runs.

use d_hetpnoc_repro::prelude::*;
use proptest::prelude::*;

/// A small pool of well-formed parameter keys; properties index into it so
/// the generated maps stay within the spec grammar (the grammar itself is
/// pinned by unit tests in `pnoc_sim::params`).
const KEYS: [&str; 6] = ["radix", "scale", "policy", "wavelengths", "alpha", "b-52"];

fn params_from(entries: &[(u64, u64)]) -> ArchParams {
    let mut params = ArchParams::new();
    for &(key_idx, raw) in entries {
        // Shift into a signed range so negative values are exercised too.
        let value = raw as i64 - 1_000_000;
        params.insert(KEYS[key_idx as usize % KEYS.len()], value);
    }
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// render → parse is the identity on every ArchParams value, both as a
    /// bare block and embedded in a `name{...}` architecture spec.
    #[test]
    fn params_render_parse_round_trip(
        entries in prop::collection::vec((0u64..6, 0u64..2_000_000), 0..6),
    ) {
        let params = params_from(&entries);
        let rendered = params.render();
        let parsed = ArchParams::parse(&rendered).expect("rendered text is canonical");
        prop_assert_eq!(&parsed, &params);
        // Canonical text is a fixed point of parse∘render.
        prop_assert_eq!(parsed.render(), rendered.clone());

        let spec = params.render_spec("firefly");
        let (name, from_spec) = ArchParams::split_spec(&spec).expect("well-formed spec");
        prop_assert_eq!(name, "firefly".to_string());
        prop_assert_eq!(from_spec, params);
    }

    /// An int parameter validates exactly when the value is inside the
    /// declared bounds, and resolves to the exact value (or the default when
    /// not overridden). Unknown keys are always rejected.
    #[test]
    fn schema_validation_accepts_exactly_the_declared_range(
        raw_value in 0u64..20_000,
        unknown_key in 0u64..6,
    ) {
        let value = raw_value as i64 - 10_000;
        let schema = ParamSchema::new().int("radix", 16, 2, 512, "crossbar radix");
        let result = schema.validate("arch", &ArchParams::new().set("radix", value));
        if (2..=512).contains(&value) {
            let resolved = result.expect("in bounds");
            prop_assert_eq!(resolved.int("radix"), value);
        } else {
            let error = result.expect_err("out of bounds");
            prop_assert!(matches!(error, ArchParamError::OutOfBounds { .. }));
            prop_assert!(error.to_string().contains("2..=512"));
        }

        // Any key the schema does not declare is rejected regardless of value.
        let key = KEYS[unknown_key as usize % KEYS.len()];
        if key != "radix" {
            let error = schema
                .validate("arch", &ArchParams::new().set(key, value))
                .expect_err("unknown key");
            prop_assert!(matches!(error, ArchParamError::UnknownParameter { .. }));
        }

        // Defaults fill in when no override is given.
        let defaults = schema.validate("arch", &ArchParams::new()).expect("defaults");
        prop_assert_eq!(defaults.int("radix"), 16);
    }
}

/// A parameter-swept matrix — two values of the uniform test fabric's
/// `wavelengths` knob crossed with two traffic patterns — produces
/// bitwise-identical results run after run, and the parallel batch equals
/// the per-scenario sequential reference.
#[test]
fn param_swept_matrix_is_deterministic_across_runs() {
    let matrix = ScenarioMatrix::new()
        .architectures(["uniform-fabric"])
        .arch_params("wavelengths", ["16", "64"])
        .traffics(["uniform-random", "tornado"])
        .effort(Effort::Smoke);
    assert_eq!(matrix.specs().len(), 4);
    let first = matrix.run().expect("all specs valid");
    let second = matrix.run().expect("all specs valid");
    assert!(
        first.bitwise_eq(&second),
        "two runs of the same param sweep must be bitwise-identical"
    );
    let sequential = matrix.run_sequential().expect("all specs valid");
    assert!(
        first.bitwise_eq(&sequential),
        "the parallel batch must equal the sequential reference"
    );
    // The two parameter values simulate distinct networks: no cross-value
    // deduplication may occur.
    assert_eq!(first.unique_points, first.total_points);
}
