//! Property-based tests of the typed metrics layer: the streaming quantile
//! sketch stays within its rank/relative error bounds against an exact sort,
//! sketch and histogram merging equal recording the union, and metric
//! reports merge deterministically.

use d_hetpnoc_repro::prelude::*;
use pnoc_sim::stats::LatencyHistogram;
use proptest::prelude::*;

/// The exact order statistic the sketch's `quantile(q)` estimates: the
/// sample of rank `ceil(q · n)` (1-based) in sorted order.
fn exact_rank_sample(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any sample set and any probed quantile, the sketch's estimate
    /// (a) covers the target rank — at least `ceil(q·n)` samples are ≤ the
    /// estimate — and (b) is within one log-linear bucket width
    /// (relative error `2^-SUB_BITS`, plus one for the unit bucket floor) of
    /// the exact sorted order statistic.
    #[test]
    fn sketch_quantiles_stay_within_rank_error_bounds(
        samples in prop::collection::vec(0u64..5_000_000, 1..400),
        q_mille in 0u64..=1000,
    ) {
        let q = q_mille as f64 / 1000.0;
        let mut sketch = QuantileSketch::new();
        for &s in &samples {
            sketch.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        let estimate = sketch.quantile(q).expect("non-empty");
        let exact = exact_rank_sample(&sorted, q);

        // (a) Rank coverage: the estimate dominates the target rank.
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let covered = sorted.iter().filter(|&&s| s <= estimate).count();
        prop_assert!(
            covered >= target,
            "estimate {estimate} covers {covered} samples, rank target is {target}"
        );

        // (b) Value error: never below the exact order statistic, and at
        // most one bucket width above it.
        prop_assert!(estimate >= exact, "estimate {estimate} below exact {exact}");
        let allowed = exact + exact / (1 << pnoc_sim::metrics::SUB_BITS) + 1;
        prop_assert!(
            estimate <= allowed,
            "estimate {estimate} exceeds error bound {allowed} (exact {exact})"
        );

        // Exact tails regardless of bucketing.
        prop_assert_eq!(sketch.max(), sorted.last().copied());
        prop_assert_eq!(sketch.min(), sorted.first().copied());
        prop_assert_eq!(sketch.count(), sorted.len() as u64);
    }

    /// Merging two sketches is bitwise identical to recording the
    /// concatenated sample stream — in either merge order.
    #[test]
    fn sketch_merge_equals_recording_the_union(
        left in prop::collection::vec(0u64..1_000_000, 0..120),
        right in prop::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut union = QuantileSketch::new();
        for &s in &left {
            a.record(s);
            union.record(s);
        }
        for &s in &right {
            b.record(s);
            union.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(&ab, &union, "merge must equal the union");
        prop_assert_eq!(&ba, &union, "merge order must not matter");
    }

    /// `LatencyHistogram::merge` equals recording the concatenated stream,
    /// and `percentile(p)` is `quantile(p/100)`.
    #[test]
    fn latency_histogram_merge_and_percentile_agree(
        left in prop::collection::vec(0u64..10_000, 0..80),
        right in prop::collection::vec(0u64..10_000, 0..80),
        p_pct in 0u64..=100,
    ) {
        let mut a = LatencyHistogram::new(16, 256);
        let mut union = LatencyHistogram::new(16, 256);
        for &s in &left {
            a.record(s);
            union.record(s);
        }
        let mut b = LatencyHistogram::new(16, 256);
        for &s in &right {
            b.record(s);
            union.record(s);
        }
        a.merge(&b).expect("same geometry");
        prop_assert_eq!(&a, &union);
        let p = p_pct as f64;
        prop_assert_eq!(a.percentile(p), a.quantile(p / 100.0));
    }
}

#[test]
fn mismatched_histogram_geometries_fail_with_a_rich_error() {
    let mut wide = LatencyHistogram::new(16, 256);
    let narrow = LatencyHistogram::new(8, 256);
    let error = wide.merge(&narrow).expect_err("bin widths differ");
    assert_eq!(error.left_bin_width, 16);
    assert_eq!(error.right_bin_width, 8);
    let message = error.to_string();
    assert!(message.contains("256 bins of 16 cycles"), "{message}");
    assert!(message.contains("256 bins of 8 cycles"), "{message}");
}
