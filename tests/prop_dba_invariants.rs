//! Property-based tests of the dynamic bandwidth allocation protocol: under
//! arbitrary target sequences and token schedules, no wavelength is ever
//! double-allocated, no cluster starves, no cluster exceeds the per-channel
//! cap, and the budget is never exceeded.

use d_hetpnoc_repro::prelude::*;
use pnoc_noc::ids::ClusterId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants hold after convergence for arbitrary target vectors.
    #[test]
    fn allocation_invariants_hold_for_any_targets(
        targets in prop::collection::vec(0usize..=12, 16),
    ) {
        let mut controller = DbaController::new(16, 48, 1, 8, 1);
        controller.set_targets(&targets);
        controller.converge(64);
        prop_assert!(controller.check_invariants().is_ok());
        let allocation = controller.allocation_snapshot();
        // No starvation, cap respected, budget respected.
        prop_assert!(allocation.iter().all(|&p| (1..=8).contains(&p)));
        prop_assert!(controller.total_held() <= 64);
        // Every cluster reaches its (clamped) target unless the budget ran out.
        let clamped: Vec<usize> = targets.iter().map(|&t| t.clamp(1, 8)).collect();
        if clamped.iter().sum::<usize>() <= 64 {
            for (c, &target) in clamped.iter().enumerate() {
                prop_assert_eq!(
                    allocation[c], target,
                    "cluster {} should reach target {} when the budget suffices", c, target
                );
            }
        }
    }

    /// Invariants hold at every single step of an arbitrary interleaving of
    /// retargeting and token circulation (not just after convergence).
    #[test]
    fn allocation_invariants_hold_under_retargeting(
        retargets in prop::collection::vec(
            (0usize..16, 0usize..=12, 1usize..=200),
            1..6
        ),
    ) {
        let mut controller = DbaController::new(16, 48, 1, 8, 1);
        let mut targets = vec![4usize; 16];
        for (cluster, new_target, ticks) in retargets {
            targets[cluster] = new_target;
            controller.set_targets(&targets);
            for _ in 0..ticks {
                controller.tick();
                prop_assert!(controller.check_invariants().is_ok());
            }
        }
    }

    /// The token never hands out more wavelengths than it has, and releasing
    /// what was allocated always restores the free count.
    #[test]
    fn token_allocate_release_roundtrip(
        size in 1usize..256,
        requests in prop::collection::vec(0usize..64, 1..20),
    ) {
        let mut token = Token::new(size);
        let mut held: Vec<Vec<usize>> = Vec::new();
        for want in requests {
            let got = token.allocate(want);
            prop_assert!(got.len() <= want);
            held.push(got);
            prop_assert_eq!(token.allocated_count() + token.free_count(), size);
        }
        let total_held: usize = held.iter().map(Vec::len).sum();
        prop_assert_eq!(token.allocated_count(), total_held);
        for h in &held {
            token.release(h);
        }
        prop_assert_eq!(token.free_count(), size);
    }

    /// Request tables always equal the element-wise maximum of the demand
    /// tables they were built from.
    #[test]
    fn request_table_is_elementwise_max(
        demands in prop::collection::vec(
            prop::collection::vec(0usize..=64, 16),
            1..5
        ),
    ) {
        let tables: Vec<DemandTable> = demands
            .iter()
            .map(|row| {
                let mut t = DemandTable::new(16);
                for (d, &w) in row.iter().enumerate() {
                    t.set(ClusterId(d), w);
                }
                t
            })
            .collect();
        let mut request = RequestTable::new(16);
        request.rebuild(&tables);
        for d in 0..16 {
            let expected = demands.iter().map(|row| row[d]).max().unwrap();
            prop_assert_eq!(request.get(ClusterId(d)), expected);
        }
        prop_assert_eq!(
            request.max_request(),
            demands.iter().flat_map(|r| r.iter().copied()).max().unwrap()
        );
    }

    /// Token sizing (eq. 1) and hop latency (eq. 2) behave monotonically.
    #[test]
    fn token_timing_is_monotone(waveguides in 1usize..=16, reserved in 0usize..=64) {
        let bits = token_size_bits(waveguides, 64, reserved.min(waveguides * 64));
        prop_assert!(bits <= waveguides * 64);
        let hop_small = token_hop_cycles(bits.max(1), 64, 12.5, Clock::paper_default());
        let hop_large = token_hop_cycles(bits.max(1) * 2, 64, 12.5, Clock::paper_default());
        prop_assert!(hop_small >= 1);
        prop_assert!(hop_large >= hop_small);
    }
}
