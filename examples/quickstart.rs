//! Quick start: describe both architectures as scenarios, run them as one
//! batch, and print the headline comparison (peak bandwidth and packet
//! energy at saturation).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use d_hetpnoc_repro::prelude::*;

fn main() {
    // Make "firefly" and "d-hetpnoc" resolvable by name.
    d_hetpnoc_repro::install_architectures();

    let config = Effort::Quick.config(BandwidthSet::Set1);
    println!("d-HetPNoC reproduction — quick start");
    println!(
        "  {} cores in {} clusters, {} total wavelengths, skewed-3 traffic\n",
        config.topology.num_cores(),
        config.topology.num_clusters(),
        config.bandwidth_set.total_wavelengths(),
    );

    // One typed scenario per architecture; the matrix engine flattens every
    // (scenario, ladder point) pair into a single parallel work queue.
    let batch = ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(["skewed-3"])
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(Effort::Quick)
        .run()
        .expect("architectures and workload are registered");

    // The d-HetPNoC wavelength allocation adapts to the skewed demand; show
    // the per-cluster snapshot from a directly built system.
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        PacketShape::new(
            config.bandwidth_set.packet_flits(),
            config.bandwidth_set.flit_bits(),
        ),
        SkewLevel::Skewed3,
        OfferedLoad::new(config.estimated_saturation_load()),
        config.seed,
    );
    let dhet_system = build_dhetpnoc_system(config, traffic);
    println!(
        "  d-HetPNoC wavelength allocation per cluster: {:?}\n",
        dhet_system.fabric().allocation_snapshot()
    );

    let mut table = Table::new(
        "Skewed-3 traffic, saturation sweep (reduced scale)",
        &[
            "scenario",
            "sustainable BW (Gb/s)",
            "latency@sat (cycles)",
            "p95 latency (cycles)",
            "packet energy (pJ)",
        ],
    );
    for outcome in &batch.scenarios {
        // Every ladder point carries a typed MetricReport; the saturation
        // point's quantile sketch gives the tail latency for free.
        let p95 = outcome
            .result
            .saturation_point()
            .and_then(|p| p.metrics.histogram("latency_cycles"))
            .and_then(|h| h.percentile(95.0))
            .map_or_else(|| "-".to_string(), |v| v.to_string());
        table.add_row(&[
            outcome.spec.id(),
            format!("{:.1}", outcome.result.sustainable_bandwidth_gbps()),
            format!("{:.1}", outcome.result.latency_at_saturation()),
            p95,
            format!("{:.1}", outcome.result.packet_energy_at_saturation_pj()),
        ]);
    }
    println!("{table}");

    let firefly = &batch.scenarios[0].result;
    let dhet = &batch.scenarios[1].result;
    let gain = (dhet.sustainable_bandwidth_gbps() - firefly.sustainable_bandwidth_gbps())
        / firefly.sustainable_bandwidth_gbps().max(1e-9)
        * 100.0;
    println!(
        "d-HetPNoC sustainable bandwidth vs Firefly: {gain:+.2}% \
         (the paper reports gains of up to ~7% at saturation for skewed traffic)"
    );
}
