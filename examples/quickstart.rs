//! Quick start: simulate both architectures on skewed traffic and print the
//! headline comparison (peak bandwidth and packet energy).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use d_hetpnoc_repro::prelude::*;

fn main() {
    // The paper's system (64 cores, 16 clusters, bandwidth set 1), scaled to
    // a shorter run so the example finishes in a couple of seconds.
    let mut config = SimConfig::fast(BandwidthSet::Set1);
    config.sim_cycles = 4_000;
    config.warmup_cycles = 500;
    let shape = PacketShape::new(
        config.bandwidth_set.packet_flits(),
        config.bandwidth_set.flit_bits(),
    );
    let load = OfferedLoad::new(config.estimated_saturation_load());

    println!("d-HetPNoC reproduction — quick start");
    println!(
        "  {} cores in {} clusters, {} total wavelengths, offered load {:.5} packets/core/cycle\n",
        config.topology.num_cores(),
        config.topology.num_clusters(),
        config.bandwidth_set.total_wavelengths(),
        load.value()
    );

    // Firefly baseline: uniform static wavelength allocation.
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        shape,
        SkewLevel::Skewed3,
        load,
        config.seed,
    );
    let mut firefly = build_firefly_system(config, traffic);
    let firefly_stats = run_to_completion(&mut firefly);

    // d-HetPNoC: the same traffic, but wavelengths allocated on demand.
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        shape,
        SkewLevel::Skewed3,
        load,
        config.seed,
    );
    let mut dhet = build_dhetpnoc_system(config, traffic);
    let dhet_stats = run_to_completion(&mut dhet);

    println!("  d-HetPNoC wavelength allocation per cluster: {:?}\n", {
        use d_hetpnoc_repro::sim::system::PhotonicFabric;
        dhet.fabric().allocation_snapshot()
    });

    let mut table = Table::new(
        "Skewed-3 traffic at the estimated saturation load",
        &[
            "architecture",
            "accepted bandwidth (Gb/s)",
            "avg latency (cycles)",
            "packet energy (pJ)",
        ],
    );
    for stats in [&firefly_stats, &dhet_stats] {
        table.add_row(&[
            stats.architecture.clone(),
            format!("{:.1}", stats.accepted_bandwidth_gbps()),
            format!("{:.1}", stats.average_packet_latency()),
            format!("{:.1}", stats.packet_energy_pj()),
        ]);
    }
    println!("{table}");

    let gain = (dhet_stats.accepted_bandwidth_gbps() - firefly_stats.accepted_bandwidth_gbps())
        / firefly_stats.accepted_bandwidth_gbps()
        * 100.0;
    println!(
        "d-HetPNoC accepted bandwidth vs Firefly at this load: {gain:+.2}% \
         (the paper reports gains of up to ~7% at saturation for skewed traffic)"
    );
}
