//! A small version of the paper's core experiment (Figures 3-3 / 3-4): sweep
//! the offered load for Firefly and d-HetPNoC under uniform and skewed
//! traffic and report peak bandwidth and packet energy at saturation.
//!
//! The whole 2 × 4 grid is one [`ScenarioMatrix`] batch: every
//! (architecture, traffic, ladder point) triple becomes one job in a single
//! flattened parallel work queue.
//!
//! ```bash
//! cargo run --release --example skewed_traffic_study
//! ```

use d_hetpnoc_repro::prelude::*;

fn main() {
    d_hetpnoc_repro::install_architectures();

    let traffics = ["uniform-random", "skewed-1", "skewed-2", "skewed-3"];
    let batch = ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(traffics)
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(Effort::Quick)
        .run()
        .expect("architectures and workloads are registered");
    println!(
        "ran {} scenarios / {} sweep points ({} unique) in {:.2}s\n",
        batch.scenarios.len(),
        batch.total_points,
        batch.unique_points,
        batch.wall_clock_seconds
    );

    let mut table = Table::new(
        "Peak bandwidth and packet energy at saturation (bandwidth set 1, reduced-scale runs)",
        &[
            "traffic",
            "Firefly peak (Gb/s)",
            "d-HetPNoC peak (Gb/s)",
            "gain",
            "Firefly EPM (pJ)",
            "d-HetPNoC EPM (pJ)",
            "saving",
        ],
    );

    for name in traffics {
        let firefly = &batch
            .find("firefly", name, BandwidthSet::Set1)
            .expect("cell was in the matrix")
            .result;
        let dhet = &batch
            .find("d-hetpnoc", name, BandwidthSet::Set1)
            .expect("cell was in the matrix")
            .result;
        let f_bw = firefly.sustainable_bandwidth_gbps();
        let d_bw = dhet.sustainable_bandwidth_gbps();
        let f_epm = firefly.packet_energy_at_saturation_pj();
        let d_epm = dhet.packet_energy_at_saturation_pj();
        table.add_row(&[
            name.to_string(),
            format!("{f_bw:.1}"),
            format!("{d_bw:.1}"),
            format!("{:+.2}%", (d_bw - f_bw) / f_bw.max(1e-9) * 100.0),
            format!("{f_epm:.0}"),
            format!("{d_epm:.0}"),
            format!("{:+.2}%", (f_epm - d_epm) / f_epm.max(1e-9) * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Expected shape (thesis, Figures 3-3/3-4): both architectures equal under uniform-random \
         traffic; d-HetPNoC gains grow with skew, up to ≈7% bandwidth and ≈5% energy."
    );
}
