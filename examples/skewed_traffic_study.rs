//! A small version of the paper's core experiment (Figures 3-3 / 3-4): sweep
//! the offered load for Firefly and d-HetPNoC under uniform and skewed
//! traffic and report peak bandwidth and packet energy at saturation.
//!
//! ```bash
//! cargo run --release --example skewed_traffic_study
//! ```

use d_hetpnoc_repro::prelude::*;

/// Runs one architecture over a ladder of offered loads and returns the
/// saturation result.
fn sweep(
    config: SimConfig,
    skew: Option<SkewLevel>,
    dhet: bool,
    loads: &[f64],
) -> SaturationResult {
    let shape = PacketShape::new(
        config.bandwidth_set.packet_flits(),
        config.bandwidth_set.flit_bits(),
    );
    sweep_offered_loads(loads, |load| {
        let load = OfferedLoad::new(load);
        let topology = ClusterTopology::paper_default();
        let traffic: Box<dyn TrafficModel> = match skew {
            Some(level) => Box::new(SkewedTraffic::new(
                topology,
                shape,
                level,
                load,
                config.seed,
            )),
            None => Box::new(UniformRandomTraffic::new(
                topology,
                shape,
                load,
                config.seed,
            )),
        };
        if dhet {
            run_to_completion(&mut build_dhetpnoc_system(config, traffic))
        } else {
            run_to_completion(&mut build_firefly_system(config, traffic))
        }
    })
}

fn main() {
    let mut config = SimConfig::fast(BandwidthSet::Set1);
    config.sim_cycles = 3_000;
    config.warmup_cycles = 500;
    let estimated = config.estimated_saturation_load();
    let loads: Vec<f64> = [0.5, 0.75, 1.0, 1.5, 2.0]
        .iter()
        .map(|f| f * estimated)
        .collect();

    let scenarios: [(&str, Option<SkewLevel>); 4] = [
        ("uniform-random", None),
        ("skewed-1", Some(SkewLevel::Skewed1)),
        ("skewed-2", Some(SkewLevel::Skewed2)),
        ("skewed-3", Some(SkewLevel::Skewed3)),
    ];

    let mut table = Table::new(
        "Peak bandwidth and packet energy at saturation (bandwidth set 1, reduced-scale runs)",
        &[
            "traffic",
            "Firefly peak (Gb/s)",
            "d-HetPNoC peak (Gb/s)",
            "gain",
            "Firefly EPM (pJ)",
            "d-HetPNoC EPM (pJ)",
            "saving",
        ],
    );

    for (name, skew) in scenarios {
        let firefly = sweep(config, skew, false, &loads);
        let dhet = sweep(config, skew, true, &loads);
        let f_bw = firefly.sustainable_bandwidth_gbps();
        let d_bw = dhet.sustainable_bandwidth_gbps();
        let f_epm = firefly.packet_energy_at_saturation_pj();
        let d_epm = dhet.packet_energy_at_saturation_pj();
        table.add_row(&[
            name.to_string(),
            format!("{f_bw:.1}"),
            format!("{d_bw:.1}"),
            format!("{:+.2}%", (d_bw - f_bw) / f_bw.max(1e-9) * 100.0),
            format!("{f_epm:.0}"),
            format!("{d_epm:.0}"),
            format!("{:+.2}%", (f_epm - d_epm) / f_epm.max(1e-9) * 100.0),
        ]);
        println!("finished {name}");
    }
    println!("\n{table}");
    println!(
        "Expected shape (thesis, Figures 3-3/3-4): both architectures equal under uniform-random \
         traffic; d-HetPNoC gains grow with skew, up to ≈7% bandwidth and ≈5% energy."
    );
}
