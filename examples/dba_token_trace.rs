//! A close-up of the dynamic bandwidth allocation protocol itself: watch the
//! token circulate, clusters acquire and release wavelengths after a task
//! remapping, and verify the allocation invariants along the way.
//!
//! ```bash
//! cargo run --release --example dba_token_trace
//! ```

use d_hetpnoc_repro::prelude::*;
use pnoc_noc::ids::ClusterId;

fn main() {
    // BW set 1 geometry: 64 wavelengths, 16 reserved (one per cluster),
    // 48 dynamically allocatable, at most 8 per cluster.
    let token_bits = token_size_bits(1, 64, 16);
    let hop = token_hop_cycles(token_bits, 64, 12.5, Clock::paper_default());
    println!(
        "token: {token_bits} bits (eq. 1), {hop} cycle(s) per hop (eq. 2), \
         worst-case repossession {} cycles\n",
        hop * 16
    );

    let mut controller = DbaController::new(16, 48, 1, 8, hop);

    // Initial task mapping: clusters 0-3 run high-bandwidth applications.
    let mut targets = vec![2usize; 16];
    targets[0..4].fill(8);
    controller.set_targets(&targets);

    println!("cycle-by-cycle acquisition (token visits shown when the allocation changes):");
    let mut last = controller.allocation_snapshot();
    for cycle in 0..200u64 {
        if let Some(holder) = controller.tick() {
            let now = controller.allocation_snapshot();
            if now != last {
                println!(
                    "  cycle {cycle:>4}: token at cluster {:>2} -> pools {:?}",
                    holder.0, now
                );
                last = now;
            }
        }
    }
    controller
        .check_invariants()
        .expect("allocation invariants");
    println!(
        "\nconverged allocation: {:?} (total {} of 64 wavelengths)\n",
        controller.allocation_snapshot(),
        controller.total_held()
    );

    // A task remapping: the high-bandwidth work migrates to clusters 12-15.
    println!("task remapping: high-bandwidth applications move to clusters 12-15");
    let mut targets = vec![2usize; 16];
    targets[12..16].fill(8);
    controller.set_targets(&targets);
    controller.converge(64);
    controller
        .check_invariants()
        .expect("allocation invariants");
    println!(
        "re-converged allocation: {:?}",
        controller.allocation_snapshot()
    );
    println!(
        "cluster 0 now holds {} wavelength(s); cluster 15 holds {}",
        controller.pool(ClusterId(0)),
        controller.pool(ClusterId(15))
    );
    println!(
        "\nNo wavelength is ever double-allocated and every cluster keeps its reserved minimum — \
         the invariants the thesis relies on for starvation freedom (Section 3.2.1)."
    );
}
