//! The analytic cost models of the thesis: the electro-optic device area
//! model of Section 3.4.3 (equations 5–24) and the packet-energy coefficients
//! of Tables 3-4 / 3-5, plus the optical link budget that shows the crossbar
//! closes with the assumed laser power and detector sensitivity.
//!
//! ```bash
//! cargo run --release --example area_energy_model
//! ```

use d_hetpnoc_repro::prelude::*;

fn main() {
    // Area model (Figure 3-6 and the 1.608 / 1.367 mm² anchors).
    let model = AreaModel::paper_default();
    let mut area = Table::new(
        "Electro-optic device area vs aggregate bandwidth (equations 5-24)",
        &[
            "wavelengths",
            "Firefly rings",
            "d-HetPNoC rings",
            "Firefly mm²",
            "d-HetPNoC mm²",
        ],
    );
    for wavelengths in [64usize, 128, 256, 512] {
        let f = model.firefly_report(wavelengths);
        let d = model.dynamic_report(wavelengths);
        area.add_row(&[
            wavelengths.to_string(),
            f.rings.total_rings().to_string(),
            d.rings.total_rings().to_string(),
            format!("{:.3}", f.area_mm2),
            format!("{:.3}", d.area_mm2),
        ]);
    }
    println!("{area}");
    println!(
        "At 64 data wavelengths the model reproduces the paper's 1.608 mm² (d-HetPNoC) vs \
         1.367 mm² (Firefly).\n"
    );

    // Energy model.
    let energy = PhotonicEnergyModel::paper_default();
    println!(
        "photonic link energy: {:.2} pJ/bit (launch {} + modulation {} + tuning {})",
        energy.photonic_link_pj_per_bit(),
        energy.launch_pj_per_bit,
        energy.modulation_pj_per_bit,
        energy.tuning_pj_per_bit
    );
    let packet_bits = 2048u64;
    println!(
        "a {packet_bits}-bit packet costs {:.0} pJ on the photonic link and {:.0} pJ per electrical \
         router traversal\n",
        energy.photonic_transfer_pj(packet_bits),
        energy.router_traversal_pj(packet_bits)
    );

    // Device-level sanity: the ring geometry, the laser and the loss budget.
    let ring = MicroRingResonator::adiabatic_2um();
    println!(
        "2 µm adiabatic micro-ring: FSR {:.2} THz (reference value 6.92 THz), fits {} channels at 100 GHz spacing",
        ring.free_spectral_range_hz() / 1e12,
        ring.max_channels(100e9)
    );
    let laser = LaserSource::paper_default(64);
    let detector = PhotoDetector::paper_default();
    let budget = LossBudget::paper_crossbar_hop(15 * 64);
    println!(
        "crossbar loss budget: {:.1} dB total; link margin with a {:.1} mW/λ laser and a {:.3} mW \
         detector sensitivity: {:.1} dB ({})",
        budget.total_db(),
        laser.power_per_wavelength_mw,
        detector.sensitivity_mw,
        budget.margin_db(laser.power_per_wavelength_mw, detector.sensitivity_mw),
        if budget.link_closes(laser.power_per_wavelength_mw, detector.sensitivity_mw) {
            "link closes"
        } else {
            "link does NOT close"
        }
    );
}
