//! The real-application case study of Section 3.4.2: MUM, BFS, CP, RAY and
//! LPS mapped onto 12 GPU clusters exchanging data with 4 memory clusters.
//! Also prints the Figure 1-1 flit-size speedup study that motivates
//! heterogeneous interconnects in the first place.
//!
//! ```bash
//! cargo run --release --example gpu_workload
//! ```

use d_hetpnoc_repro::prelude::*;
use d_hetpnoc_repro::sim::system::PhotonicFabric;

fn main() {
    // Part 1: Figure 1-1 — why heterogeneous bandwidth matters.
    let speedups = GpuSpeedupModel::figure_1_1();
    let mut fig = Table::new(
        "Figure 1-1: speedup of 1024B flits over the 32B baseline",
        &["benchmark", "speedup"],
    );
    let mut rows = speedups.rows();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for (name, _launches, pct) in rows.iter().take(8) {
        fig.add_row(&[name.clone(), format!("{pct:+.2}%")]);
    }
    println!("{fig}");
    println!(
        "{} of {} benchmarks gain <1%; the most bandwidth-hungry gains {:.0}% — only a few\n\
         applications need wide channels, which is what d-HetPNoC exploits.\n",
        speedups.count_below(1.0),
        speedups.benchmarks.len(),
        speedups.max_speedup_percent()
    );

    // Part 2: the GPU + memory-cluster traffic on both architectures.
    let mut config = SimConfig::fast(BandwidthSet::Set1);
    config.sim_cycles = 4_000;
    config.warmup_cycles = 500;
    let shape = PacketShape::new(
        config.bandwidth_set.packet_flits(),
        config.bandwidth_set.flit_bits(),
    );
    let load = OfferedLoad::new(config.estimated_saturation_load() * 1.2);

    let make_traffic = || {
        RealApplicationTraffic::paper_mapping(
            ClusterTopology::paper_default(),
            shape,
            load,
            config.seed,
        )
    };

    let apps = make_traffic();
    let mut mapping = Table::new(
        "Application mapping (Section 3.4.2)",
        &[
            "application",
            "clusters",
            "bandwidth class",
            "relative intensity",
        ],
    );
    for app in apps.applications() {
        mapping.add_row(&[
            app.benchmark.name.clone(),
            format!("{:?}", app.clusters.iter().map(|c| c.0).collect::<Vec<_>>()),
            app.benchmark.bandwidth_class().to_string(),
            format!("{:.2}", app.intensity),
        ]);
    }
    println!("{mapping}");

    let mut firefly = build_firefly_system(config, make_traffic());
    let firefly_stats = run_to_completion(&mut firefly);
    let mut dhet = build_dhetpnoc_system(config, make_traffic());
    let dhet_stats = run_to_completion(&mut dhet);

    println!(
        "d-HetPNoC wavelength pools (clusters 0-11 are GPUs, 12-15 memory): {:?}\n",
        dhet.fabric().allocation_snapshot()
    );

    let mut result = Table::new(
        "Real-application traffic above the saturation estimate",
        &[
            "architecture",
            "accepted bandwidth (Gb/s)",
            "per-core bandwidth (Gb/s)",
            "packet energy (pJ)",
        ],
    );
    for stats in [&firefly_stats, &dhet_stats] {
        result.add_row(&[
            stats.architecture.clone(),
            format!("{:.1}", stats.accepted_bandwidth_gbps()),
            format!("{:.2}", stats.accepted_bandwidth_per_core_gbps(64)),
            format!("{:.1}", stats.packet_energy_pj()),
        ]);
    }
    println!("{result}");
    println!(
        "The memory-bound applications (MUM, BFS) and the memory clusters receive wider\n\
         wavelength pools under d-HetPNoC, which is where its advantage on this workload comes from."
    );
}
