//! # d-hetpnoc-repro — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Heterogeneous Photonic
//! Network-on-Chip with Dynamic Bandwidth Allocation"* (Shah, SOCC 2014):
//! a cycle-accurate photonic NoC simulator, the crossbar-based Firefly
//! baseline, and the proposed d-HetPNoC architecture with token-based
//! dynamic bandwidth allocation, together with the traffic generators,
//! photonic device/energy/area models and the benchmark harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This crate simply re-exports the workspace crates under friendly names and
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! and property tests (`tests/`).
//!
//! ## Quick start
//!
//! ```
//! use d_hetpnoc_repro::prelude::*;
//!
//! // Paper configuration at bandwidth set 1, scaled down for a doc test.
//! let config = SimConfig::fast(BandwidthSet::Set1);
//! let traffic = UniformRandomTraffic::new(
//!     ClusterTopology::paper_default(),
//!     PacketShape::new(64, 32),
//!     OfferedLoad::new(config.estimated_saturation_load() * 0.5),
//!     42,
//! );
//! let mut system = build_dhetpnoc_system(config, traffic);
//! let stats = run_to_completion(&mut system);
//! assert!(stats.delivered_packets > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Electrical NoC substrate (flits, virtual channels, routers, topology).
pub use pnoc_noc as noc;
/// Photonic device, energy and area models.
pub use pnoc_photonics as photonics;
/// Cycle-accurate simulation engine.
pub use pnoc_sim as sim;
/// Traffic generators (uniform, skewed, hotspot, GPU applications).
pub use pnoc_traffic as traffic;
/// The Firefly baseline architecture.
pub use pnoc_firefly as firefly;
/// The d-HetPNoC architecture (the paper's contribution).
pub use pnoc_dhetpnoc as dhetpnoc;

/// The most commonly used items across the whole workspace.
pub mod prelude {
    pub use pnoc_dhetpnoc::prelude::*;
    pub use pnoc_firefly::prelude::*;
    pub use pnoc_noc::prelude::*;
    pub use pnoc_photonics::prelude::*;
    pub use pnoc_sim::prelude::*;
    pub use pnoc_traffic::prelude::*;
}
