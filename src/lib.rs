//! # d-hetpnoc-repro — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Heterogeneous Photonic
//! Network-on-Chip with Dynamic Bandwidth Allocation"* (Shah, SOCC 2014):
//! a cycle-accurate photonic NoC simulator, the crossbar-based Firefly
//! baseline, and the proposed d-HetPNoC architecture with token-based
//! dynamic bandwidth allocation, together with the traffic generators,
//! photonic device/energy/area models and the benchmark harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This crate re-exports the workspace crates under friendly names, hosts
//! the runnable examples (`examples/`) and the cross-crate integration and
//! property tests (`tests/`), and wires every architecture into the
//! process-global registry (see [`install_architectures`]).
//!
//! ## Quick start: the scenario API
//!
//! One experiment is one [`ScenarioSpec`](sim::scenario::ScenarioSpec): the
//! architecture and workload by registry name, the bandwidth set, the effort
//! level and the base seed — typed, validated against the registries (with
//! "did you mean" suggestions on typos) and serializable. Running it sweeps
//! the offered-load ladder in parallel, each point an independent
//! deterministic simulation, bitwise-identical to a sequential run:
//!
//! ```
//! use d_hetpnoc_repro::prelude::*;
//!
//! // Make "firefly", "d-hetpnoc" and "uniform-fabric" resolvable.
//! d_hetpnoc_repro::install_architectures();
//!
//! // A reduced-effort scenario so this doc test stays fast.
//! let outcome = ScenarioSpec::new("d-hetpnoc", "skewed-3")
//!     .with_bandwidth_set(BandwidthSet::Set1)
//!     .with_effort(Effort::Smoke)
//!     .resolve()
//!     .expect("both names are registered")
//!     .run();
//! assert_eq!(outcome.result.points.len(), outcome.point_seeds.len());
//! assert!(outcome.result.peak_bandwidth_gbps() > 0.0);
//!
//! // Whole evaluation grids are one batch: every (scenario, ladder point)
//! // pair goes into a single flattened, deduplicated rayon work queue.
//! let matrix = ScenarioMatrix::new()
//!     .architectures(["firefly", "d-hetpnoc"])
//!     .traffics(["tornado"])
//!     .effort(Effort::Smoke);
//! let batch = matrix.run().expect("all names registered");
//! assert_eq!(batch.scenarios.len(), 2);
//! ```
//!
//! The old per-architecture helpers (`build_firefly_system`,
//! `build_dhetpnoc_system`) still exist for direct, non-registry use; the
//! closure-based `run_saturation_sweep` shim has been removed — every sweep
//! goes through the scenario engine.
//!
//! ## Metrics
//!
//! Every sweep point carries a typed
//! [`MetricReport`](sim::metrics::MetricReport) — streaming latency
//! quantiles (p50/p95/p99/max), per-node and per-cluster-pair breakdowns,
//! windowed throughput — collected by an engine-driven
//! [`MetricsProbe`](sim::metrics::MetricsProbe) and exportable through
//! pluggable sinks (JSONL, CSV, in-memory); see `pnoc_sim::metrics` and
//! `repro --metrics`.
//!
//! ## Per-point seed derivation
//!
//! Sweep point `i` simulates with
//! `seed = splitmix64(config.seed XOR (i + 1) · 0x9E3779B97F4A7C15)`
//! (see `pnoc_sim::sweep::derive_point_seed`), so a point's result depends
//! only on the base seed, the point index and the load — never on thread
//! scheduling. That is what makes the parallel sweep reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The d-HetPNoC architecture (the paper's contribution).
pub use pnoc_dhetpnoc as dhetpnoc;
/// The Firefly baseline architecture.
pub use pnoc_firefly as firefly;
/// Hierarchical multi-pod topologies composed from registered leaf fabrics.
pub use pnoc_hier as hier;
/// Electrical NoC substrate (flits, virtual channels, routers, topology).
pub use pnoc_noc as noc;
/// Photonic device, energy and area models.
pub use pnoc_photonics as photonics;
/// Cycle-accurate simulation engine.
pub use pnoc_sim as sim;
/// Traffic generators (uniform, skewed, hotspot, GPU applications,
/// permutation, bursty) and the traffic registry.
pub use pnoc_traffic as traffic;
/// Flow-level workloads: collective DAG generators, trace replay and the
/// workload registry behind the closed-loop scenario variant.
pub use pnoc_workload as workload;

/// Registers every architecture of this workspace into the process-global
/// architecture registry: `"firefly"`, `"d-hetpnoc"`, the hierarchical
/// composition `"hier"`, and (built into `pnoc-sim` itself) the
/// `"uniform-fabric"` test fabric.
///
/// Idempotent and cheap; call it before resolving architectures by name.
/// Crates defining additional architectures register themselves with
/// `pnoc_sim::registry::register_architecture` — nothing here (or in the
/// benchmark harness) needs to change for a new architecture to become
/// sweepable.
pub fn install_architectures() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        pnoc_firefly::network::register_firefly_architecture();
        pnoc_dhetpnoc::network::register_dhetpnoc_architecture();
        // After the leaves: hier resolves its leaf builder by name at build
        // time, so the leaves must already be registered.
        pnoc_hier::register_hier_architecture();
    });
}

/// The most commonly used items across the whole workspace.
pub mod prelude {
    pub use pnoc_dhetpnoc::prelude::*;
    pub use pnoc_firefly::prelude::*;
    pub use pnoc_noc::prelude::*;
    pub use pnoc_photonics::prelude::*;
    pub use pnoc_sim::prelude::*;
    pub use pnoc_traffic::prelude::*;
    pub use pnoc_workload::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_architectures_is_idempotent_and_complete() {
        super::install_architectures();
        super::install_architectures();
        let names = pnoc_sim::registry::registered_architectures();
        for expected in ["d-hetpnoc", "firefly", "hier", "uniform-fabric"] {
            assert!(
                names.contains(&expected.to_string()),
                "architecture '{expected}' missing from {names:?}"
            );
        }
    }
}
