//! # d-hetpnoc-repro — umbrella crate
//!
//! A from-scratch Rust reproduction of *"Heterogeneous Photonic
//! Network-on-Chip with Dynamic Bandwidth Allocation"* (Shah, SOCC 2014):
//! a cycle-accurate photonic NoC simulator, the crossbar-based Firefly
//! baseline, and the proposed d-HetPNoC architecture with token-based
//! dynamic bandwidth allocation, together with the traffic generators,
//! photonic device/energy/area models and the benchmark harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This crate re-exports the workspace crates under friendly names, hosts
//! the runnable examples (`examples/`) and the cross-crate integration and
//! property tests (`tests/`), and wires every architecture into the
//! process-global registry (see [`install_architectures`]).
//!
//! ## Quick start: registries + the parallel sweep engine
//!
//! Architectures and workloads are resolved by name. An offered-load
//! saturation sweep runs each ladder point as an independent deterministic
//! simulation — in parallel when asked, with results bitwise-identical to a
//! sequential run:
//!
//! ```
//! use d_hetpnoc_repro::prelude::*;
//!
//! // Make "firefly", "d-hetpnoc" and "uniform-fabric" resolvable.
//! d_hetpnoc_repro::install_architectures();
//! let architecture = lookup_architecture("d-hetpnoc").expect("registered");
//!
//! // A reduced-scale run so this doc test stays fast.
//! let mut config = SimConfig::fast(BandwidthSet::Set1);
//! config.sim_cycles = 600;
//! config.warmup_cycles = 150;
//!
//! // Workloads come from the traffic registry ("skewed-3", "tornado", ...).
//! let workload = lookup_traffic_factory("skewed-3").expect("registered");
//! let shape = PacketShape::new(
//!     config.bandwidth_set.packet_flits(),
//!     config.bandwidth_set.flit_bits(),
//! );
//!
//! // Two-point ladder around the estimated saturation load; each point gets
//! // its own derived seed (spec.seed) so points are independent.
//! let estimate = config.estimated_saturation_load();
//! let result = run_saturation_sweep(
//!     architecture.as_ref(),
//!     &|spec| workload.build(&TrafficSpec::new(spec.config.topology, shape, spec.offered_load, spec.seed)),
//!     &config,
//!     &[estimate * 0.5, estimate],
//!     SweepMode::Parallel,
//! );
//! assert_eq!(result.points.len(), 2);
//! assert!(result.peak_bandwidth_gbps() > 0.0);
//! ```
//!
//! The old per-architecture helpers (`build_firefly_system`,
//! `build_dhetpnoc_system`) still exist for direct, non-registry use; the
//! per-architecture sweep helpers are deprecated thin wrappers over the
//! generic driver.
//!
//! ## Per-point seed derivation
//!
//! Sweep point `i` simulates with
//! `seed = splitmix64(config.seed XOR (i + 1) · 0x9E3779B97F4A7C15)`
//! (see `pnoc_sim::sweep::derive_point_seed`), so a point's result depends
//! only on the base seed, the point index and the load — never on thread
//! scheduling. That is what makes the parallel sweep reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The d-HetPNoC architecture (the paper's contribution).
pub use pnoc_dhetpnoc as dhetpnoc;
/// The Firefly baseline architecture.
pub use pnoc_firefly as firefly;
/// Electrical NoC substrate (flits, virtual channels, routers, topology).
pub use pnoc_noc as noc;
/// Photonic device, energy and area models.
pub use pnoc_photonics as photonics;
/// Cycle-accurate simulation engine.
pub use pnoc_sim as sim;
/// Traffic generators (uniform, skewed, hotspot, GPU applications,
/// permutation, bursty) and the traffic registry.
pub use pnoc_traffic as traffic;

/// Registers every architecture of this workspace into the process-global
/// architecture registry: `"firefly"`, `"d-hetpnoc"`, and (built into
/// `pnoc-sim` itself) the `"uniform-fabric"` test fabric.
///
/// Idempotent and cheap; call it before resolving architectures by name.
/// Crates defining additional architectures register themselves with
/// `pnoc_sim::registry::register_architecture` — nothing here (or in the
/// benchmark harness) needs to change for a new architecture to become
/// sweepable.
pub fn install_architectures() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        pnoc_firefly::network::register_firefly_architecture();
        pnoc_dhetpnoc::network::register_dhetpnoc_architecture();
    });
}

/// The most commonly used items across the whole workspace.
pub mod prelude {
    pub use pnoc_dhetpnoc::prelude::*;
    pub use pnoc_firefly::prelude::*;
    pub use pnoc_noc::prelude::*;
    pub use pnoc_photonics::prelude::*;
    pub use pnoc_sim::prelude::*;
    pub use pnoc_traffic::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_architectures_is_idempotent_and_complete() {
        super::install_architectures();
        super::install_architectures();
        let names = pnoc_sim::registry::registered_architectures();
        for expected in ["d-hetpnoc", "firefly", "uniform-fabric"] {
            assert!(
                names.contains(&expected.to_string()),
                "architecture '{expected}' missing from {names:?}"
            );
        }
    }
}
